#include "nn/tensor.hpp"

#include <algorithm>
#include <atomic>

#include <cmath>
#include <numeric>

#include "nn/gemm.hpp"
#include "util/check.hpp"

namespace groupfel::nn {

namespace {
std::atomic<std::uint64_t> g_tensor_ctors{0};
}  // namespace

std::uint64_t tensor_construction_count() noexcept {
  return g_tensor_ctors.load(std::memory_order_relaxed);
}

std::size_t shape_size(std::span<const std::size_t> shape) noexcept {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {
  g_tensor_ctors.fetch_add(1, std::memory_order_relaxed);
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  GF_CHECK_EQ(data_.size(), shape_size(shape_),
              "Tensor: data size does not match shape ", shape_string());
  g_tensor_ctors.fetch_add(1, std::memory_order_relaxed);
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), data_(other.data_) {
  g_tensor_ctors.fetch_add(1, std::memory_order_relaxed);
}

void Tensor::fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

void Tensor::reshape(std::vector<std::size_t> new_shape) {
  GF_CHECK_EQ(shape_size(new_shape), data_.size(),
              "Tensor::reshape from ", shape_string());
  shape_ = std::move(new_shape);
}

void Tensor::resize(const std::vector<std::size_t>& new_shape) {
  if (shape_ == new_shape) return;
  shape_ = new_shape;
  data_.resize(shape_size(shape_));
}

void Tensor::resize_leading(std::size_t n) {
  GF_CHECK(!shape_.empty(), "Tensor::resize_leading on rank-0 tensor");
  if (shape_[0] == n) return;
  const std::size_t stride =
      shape_size({shape_.data() + 1, shape_.size() - 1});
  shape_[0] = n;
  data_.resize(n * stride);
}

void Tensor::resize2(std::size_t d0, std::size_t d1) {
  if (shape_.size() == 2 && shape_[0] == d0 && shape_[1] == d1) return;
  shape_.resize(2);
  shape_[0] = d0;
  shape_[1] = d1;
  data_.resize(d0 * d1);
}

void Tensor::resize4(std::size_t d0, std::size_t d1, std::size_t d2,
                     std::size_t d3) {
  if (shape_.size() == 4 && shape_[0] == d0 && shape_[1] == d1 &&
      shape_[2] == d2 && shape_[3] == d3)
    return;
  shape_.resize(4);
  shape_[0] = d0;
  shape_[1] = d1;
  shape_[2] = d2;
  shape_[3] = d3;
  data_.resize(d0 * d1 * d2 * d3);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  GF_CHECK_EQ(other.size(), size(), "Tensor::+= ", other.shape_string(),
              " into ", shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  GF_CHECK_EQ(other.size(), size(), "Tensor::-= ", other.shape_string(),
              " into ", shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) noexcept {
  for (auto& v : data_) v *= scalar;
  return *this;
}

double Tensor::sum() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::l2_norm() const noexcept {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(s);
}

std::string Tensor::shape_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

void matmul(const Tensor& a, const Tensor& b, Tensor& out,
            StoragePrecision sp) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  GF_CHECK(b.dim(0) == k && out.dim(0) == m && out.dim(1) == n,
           "matmul: ", a.shape_string(), " x ", b.shape_string(), " -> ",
           out.shape_string());
  detail::gemm(m, n, k, {a.raw(), k, 1}, {b.raw(), n, 1}, out.raw(), sp);
}

void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out,
               StoragePrecision sp) {
  // out[m, n] = a[m, k] * b[n, k]^T
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  GF_CHECK(b.dim(1) == k && out.dim(0) == m && out.dim(1) == n,
           "matmul_bt: ", a.shape_string(), " x ", b.shape_string(), "^T -> ",
           out.shape_string());
  detail::gemm(m, n, k, {a.raw(), k, 1}, {b.raw(), 1, k}, out.raw(), sp);
}

void matmul_at(const Tensor& a, const Tensor& b, Tensor& out,
               StoragePrecision sp) {
  // out[k, n] = a[m, k]^T * b[m, n]
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  GF_CHECK(b.dim(0) == m && out.dim(0) == k && out.dim(1) == n,
           "matmul_at: ", a.shape_string(), "^T x ", b.shape_string(), " -> ",
           out.shape_string());
  detail::gemm(k, n, m, {a.raw(), 1, k}, {b.raw(), n, 1}, out.raw(), sp);
}

void matmul_at_acc(const Tensor& a, const Tensor& b, Tensor& out,
                   StoragePrecision sp) {
  // out[k, n] += a[m, k]^T * b[m, n]
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  GF_CHECK(b.dim(0) == m && out.dim(0) == k && out.dim(1) == n,
           "matmul_at_acc: ", a.shape_string(), "^T x ", b.shape_string(),
           " -> ", out.shape_string());
  detail::gemm_acc(k, n, m, {a.raw(), 1, k}, {b.raw(), n, 1}, out.raw(), sp);
}

void matmul_naive(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  GF_CHECK(b.dim(0) == k && out.dim(0) == m && out.dim(1) == n,
           "matmul: ", a.shape_string(), " x ", b.shape_string(), " -> ",
           out.shape_string());
  out.zero();
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

void matmul_bt_naive(const Tensor& a, const Tensor& b, Tensor& out) {
  // out[m, n] = a[m, k] * b[n, k]^T
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  GF_CHECK(b.dim(1) == k && out.dim(0) == m && out.dim(1) == n,
           "matmul_bt: ", a.shape_string(), " x ", b.shape_string(), "^T -> ",
           out.shape_string());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const float* arow = pa + i * k;
      const float* brow = pb + j * k;
      // Four independent double-precision lanes: the reduction vectorizes
      // (no loop-carried dependence between lanes) and accumulates like
      // Tensor::l2_norm, so long dot products do not drift in fp32.
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      std::size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        acc0 += static_cast<double>(arow[kk]) * static_cast<double>(brow[kk]);
        acc1 += static_cast<double>(arow[kk + 1]) *
                static_cast<double>(brow[kk + 1]);
        acc2 += static_cast<double>(arow[kk + 2]) *
                static_cast<double>(brow[kk + 2]);
        acc3 += static_cast<double>(arow[kk + 3]) *
                static_cast<double>(brow[kk + 3]);
      }
      double acc = (acc0 + acc1) + (acc2 + acc3);
      for (; kk < k; ++kk)
        acc += static_cast<double>(arow[kk]) * static_cast<double>(brow[kk]);
      po[i * n + j] = static_cast<float>(acc);
    }
  }
}

void matmul_at_naive(const Tensor& a, const Tensor& b, Tensor& out) {
  // out[k, n] = a[m, k]^T * b[m, n]
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  GF_CHECK(b.dim(0) == m && out.dim(0) == k && out.dim(1) == n,
           "matmul_at: ", a.shape_string(), "^T x ", b.shape_string(), " -> ",
           out.shape_string());
  out.zero();
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* orow = po + kk * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace groupfel::nn
