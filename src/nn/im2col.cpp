#include "nn/im2col.hpp"

#include <algorithm>
#include <cstring>

namespace groupfel::nn::detail {
namespace {

/// Valid output-pixel interval [lo, hi) for one kernel offset kf along an
/// axis of input extent `in` (out extent `out`): in-coordinate o + kf − pad
/// must land in [0, in).
inline void valid_range(std::size_t out, std::size_t in, std::size_t kf,
                        std::size_t pad, std::size_t& lo, std::size_t& hi) {
  lo = pad > kf ? pad - kf : 0;
  hi = (in + pad > kf) ? std::min(out, in + pad - kf) : 0;
  if (hi < lo) hi = lo;
}

}  // namespace

void im2col(const float* x, std::size_t n, std::size_t c, std::size_t h,
            std::size_t w, std::size_t k, std::size_t pad, float* cols) {
  const std::size_t ho = conv_out_dim(h, k, pad);
  const std::size_t wo = conv_out_dim(w, k, pad);
  const std::size_t ncols = n * ho * wo;
  for (std::size_t ci = 0; ci < c; ++ci) {
    for (std::size_t ky = 0; ky < k; ++ky) {
      std::size_t oy0, oy1;
      valid_range(ho, h, ky, pad, oy0, oy1);
      for (std::size_t kx = 0; kx < k; ++kx) {
        std::size_t ox0, ox1;
        valid_range(wo, w, kx, pad, ox0, ox1);
        float* dst = cols + ((ci * k + ky) * k + kx) * ncols;
        for (std::size_t ni = 0; ni < n; ++ni) {
          const float* plane = x + (ni * c + ci) * h * w;
          for (std::size_t oy = 0; oy < ho; ++oy) {
            float* drow = dst + (ni * ho + oy) * wo;
            if (oy < oy0 || oy >= oy1) {
              std::memset(drow, 0, wo * sizeof(float));
              continue;
            }
            const std::size_t iy = oy + ky - pad;
            const float* srow = plane + iy * w + (ox0 + kx - pad);
            if (ox0 > 0) std::memset(drow, 0, ox0 * sizeof(float));
            std::memcpy(drow + ox0, srow, (ox1 - ox0) * sizeof(float));
            if (ox1 < wo)
              std::memset(drow + ox1, 0, (wo - ox1) * sizeof(float));
          }
        }
      }
    }
  }
}

void col2im(const float* cols, std::size_t n, std::size_t c, std::size_t h,
            std::size_t w, std::size_t k, std::size_t pad, float* grad_x) {
  const std::size_t ho = conv_out_dim(h, k, pad);
  const std::size_t wo = conv_out_dim(w, k, pad);
  const std::size_t ncols = n * ho * wo;
  for (std::size_t ci = 0; ci < c; ++ci) {
    for (std::size_t ky = 0; ky < k; ++ky) {
      std::size_t oy0, oy1;
      valid_range(ho, h, ky, pad, oy0, oy1);
      for (std::size_t kx = 0; kx < k; ++kx) {
        std::size_t ox0, ox1;
        valid_range(wo, w, kx, pad, ox0, ox1);
        const float* src = cols + ((ci * k + ky) * k + kx) * ncols;
        for (std::size_t ni = 0; ni < n; ++ni) {
          float* plane = grad_x + (ni * c + ci) * h * w;
          for (std::size_t oy = oy0; oy < oy1; ++oy) {
            const std::size_t iy = oy + ky - pad;
            const float* srow = src + (ni * ho + oy) * wo + ox0;
            float* drow = plane + iy * w + (ox0 + kx - pad);
            const std::size_t len = ox1 - ox0;
            for (std::size_t i = 0; i < len; ++i) drow[i] += srow[i];
          }
        }
      }
    }
  }
}

}  // namespace groupfel::nn::detail
