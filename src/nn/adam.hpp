// Adam optimizer (Kingma & Ba). The paper's experiments use plain SGD; Adam
// is provided as part of the optimizer library and used by the extension
// benches to sanity-check that conclusions are not SGD artifacts.
#pragma once

#include "nn/optimizer.hpp"

namespace groupfel::nn {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class AdamOptimizer {
 public:
  explicit AdamOptimizer(AdamOptions opts) : opts_(opts) {}

  /// One Adam step over the model's accumulated gradients. The optional
  /// `adjust` hook mirrors SgdOptimizer's (FedProx/SCAFFOLD support).
  void step(Model& model, const SgdOptimizer::GradAdjust& adjust = nullptr);

  [[nodiscard]] const AdamOptions& options() const noexcept { return opts_; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return t_; }

 private:
  AdamOptions opts_;
  std::vector<float> m_, v_;  // first/second moment estimates
  std::size_t t_ = 0;
};

}  // namespace groupfel::nn
