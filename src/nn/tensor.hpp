// Dense row-major float tensor — the numeric core of the from-scratch NN
// library (no external ML dependency is available or used).
//
// Shapes follow the usual conventions: activations are [N, features] for
// dense layers and [N, C, H, W] for convolutional layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/precision.hpp"

namespace groupfel::nn {

/// Process-wide count of Tensor constructions that acquire fresh storage:
/// the shape / shape+data constructors and the copy constructor. Default
/// construction, moves, and assignment into an existing tensor (which reuse
/// capacity) are not counted. Deltas around a steady-state region prove the
/// "zero tensor constructions per SGD step" property of the minibatch
/// pipeline (bench/sweep_throughput, tests/minibatch_pipeline_test.cpp).
[[nodiscard]] std::uint64_t tensor_construction_count() noexcept;

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);

  /// Tensor wrapping existing data (copied); data.size() must match shape.
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other) = default;
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(Tensor&& other) noexcept = default;
  ~Tensor() = default;

  [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept {
    return shape_;
  }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const { return shape_.at(i); }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }
  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D indexed access (dense activations / weight matrices).
  float& at2(std::size_t r, std::size_t c) { return data_[r * shape_[1] + c]; }
  [[nodiscard]] float at2(std::size_t r, std::size_t c) const {
    return data_[r * shape_[1] + c];
  }

  /// 4-D indexed access (conv activations [N, C, H, W]).
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) const {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  void fill(float v) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// Reinterprets the buffer with a new shape of identical total size.
  void reshape(std::vector<std::size_t> new_shape);

  /// Resizes to `new_shape`, reusing the existing allocation when capacity
  /// suffices (std::vector keeps capacity on shrink/regrow). Element values
  /// are unspecified afterwards — callers overwrite the full buffer. A no-op
  /// when the shape already matches.
  void resize(const std::vector<std::size_t>& new_shape);

  /// Resizes only the leading dimension (e.g. the batch axis of an
  /// [N, ...] activation) without touching the shape vector's allocation.
  /// Requires rank() >= 1.
  void resize_leading(std::size_t n);

  /// Rank-specific resize forms that never materialize a temporary shape
  /// vector — the layer hot paths call these once per step.
  void resize2(std::size_t d0, std::size_t d1);
  void resize4(std::size_t d0, std::size_t d1, std::size_t d2,
               std::size_t d3);

  /// Elementwise helpers (throw on shape mismatch).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar) noexcept;

  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double l2_norm() const noexcept;

  [[nodiscard]] std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Product of dimensions.
[[nodiscard]] std::size_t shape_size(std::span<const std::size_t> shape) noexcept;

/// C = A(m×k) · B(k×n) into a [m, n] tensor. Backed by the blocked, packed
/// GEMM in nn/gemm.cpp; splits row panels over runtime::ThreadPool for
/// large shapes (bit-identical results for any pool size). `sp` selects the
/// operand storage width inside the GEMM (fp32 accumulation always).
void matmul(const Tensor& a, const Tensor& b, Tensor& out,
            StoragePrecision sp = StoragePrecision::kFp32);

/// C = A(m×k) · Bᵀ where B is (n×k); used by dense backward.
void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out,
               StoragePrecision sp = StoragePrecision::kFp32);

/// C = Aᵀ(k×m becomes m rows) · B; used for weight gradients.
void matmul_at(const Tensor& a, const Tensor& b, Tensor& out,
               StoragePrecision sp = StoragePrecision::kFp32);

/// C += Aᵀ · B. Accumulating form of matmul_at: dense backward adds the
/// micro-batch weight gradient straight into the gradient tensor instead of
/// staging it in a weight-sized temporary.
void matmul_at_acc(const Tensor& a, const Tensor& b, Tensor& out,
                   StoragePrecision sp = StoragePrecision::kFp32);

// Naive triple-loop oracles for the kernels above. Retained as the
// correctness reference for tests and the baseline for bench/micro_kernels;
// not used on any training path.
void matmul_naive(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_bt_naive(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_at_naive(const Tensor& a, const Tensor& b, Tensor& out);

}  // namespace groupfel::nn
