#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace groupfel::nn {

Tensor softmax(const Tensor& logits) {
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  Tensor probs({n, c});
  for (std::size_t i = 0; i < n; ++i) {
    float mx = logits.at2(i, 0);
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, logits.at2(i, j));
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      const double e = std::exp(static_cast<double>(logits.at2(i, j) - mx));
      probs.at2(i, j) = static_cast<float>(e);
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < c; ++j) probs.at2(i, j) *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  LossResult res;
  softmax_cross_entropy_into(logits, labels, res);
  return res;
}

void softmax_cross_entropy_into(const Tensor& logits,
                                std::span<const std::int32_t> labels,
                                LossResult& res) {
  if (logits.rank() != 2)
    throw std::invalid_argument("softmax_cross_entropy: logits must be 2-D");
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  if (labels.size() != n)
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");

  res.loss = 0.0;
  res.correct = 0;
  res.grad.resize2(n, c);  // every element is overwritten below
  const float inv_n = 1.0f / static_cast<float>(n);
  double total = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    const auto label = static_cast<std::size_t>(labels[i]);
    if (label >= c)
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    float mx = logits.at2(i, 0);
    std::size_t argmax = 0;
    for (std::size_t j = 1; j < c; ++j)
      if (logits.at2(i, j) > mx) {
        mx = logits.at2(i, j);
        argmax = j;
      }
    if (argmax == label) ++res.correct;

    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j)
      denom += std::exp(static_cast<double>(logits.at2(i, j) - mx));
    const double log_denom = std::log(denom);
    total += log_denom - static_cast<double>(logits.at2(i, label) - mx);

    for (std::size_t j = 0; j < c; ++j) {
      const double p =
          std::exp(static_cast<double>(logits.at2(i, j) - mx)) / denom;
      res.grad.at2(i, j) =
          (static_cast<float>(p) - (j == label ? 1.0f : 0.0f)) * inv_n;
    }
  }
  res.loss = total / static_cast<double>(n);
}

}  // namespace groupfel::nn
