#include "nn/adam.hpp"

#include <cmath>

namespace groupfel::nn {

void AdamOptimizer::step(Model& model,
                         const SgdOptimizer::GradAdjust& adjust) {
  const std::size_t total = model.param_count();
  if (m_.size() != total) {
    m_.assign(total, 0.0f);
    v_.assign(total, 0.0f);
    t_ = 0;
  }
  ++t_;
  const float bias1 =
      1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bias2 =
      1.0f - std::pow(opts_.beta2, static_cast<float>(t_));

  std::size_t offset = 0;
  model.for_each_param([&](Tensor& p, Tensor& g) {
    auto param = p.data();
    auto grad = g.data();
    if (opts_.weight_decay != 0.0f)
      for (std::size_t i = 0; i < grad.size(); ++i)
        grad[i] += opts_.weight_decay * param[i];
    if (adjust) adjust(offset, param, grad);

    for (std::size_t i = 0; i < grad.size(); ++i) {
      float& m = m_[offset + i];
      float& v = v_[offset + i];
      m = opts_.beta1 * m + (1.0f - opts_.beta1) * grad[i];
      v = opts_.beta2 * v + (1.0f - opts_.beta2) * grad[i] * grad[i];
      const float m_hat = m / bias1;
      const float v_hat = v / bias2;
      param[i] -= opts_.lr * m_hat / (std::sqrt(v_hat) + opts_.eps);
    }
    offset += param.size();
  });
}

}  // namespace groupfel::nn
