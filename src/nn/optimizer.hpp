// SGD optimizer (optionally with momentum and weight decay) plus the
// gradient-adjustment hook that FedProx and SCAFFOLD use to modify the
// descent direction without re-implementing the training loop.
#pragma once

#include <functional>
#include <span>

#include "nn/model.hpp"

namespace groupfel::nn {

struct SgdOptions {
  float lr = 0.05f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class SgdOptimizer {
 public:
  /// `adjust(flat_offset, param, grad_inout)` is called per parameter tensor
  /// before the update; FedProx adds mu*(x - x_global), SCAFFOLD adds
  /// (c - c_i). Pass nullptr for plain SGD.
  using GradAdjust = std::function<void(std::size_t flat_offset,
                                        std::span<const float> param,
                                        std::span<float> grad)>;

  explicit SgdOptimizer(SgdOptions opts) : opts_(opts) {}

  /// Applies one SGD step to `model` using its accumulated gradients. With
  /// `zero_grads` the gradients are cleared in the same pass that consumes
  /// them, sparing the tight training loop a separate zero_grad() traversal
  /// of every gradient tensor per batch.
  void step(Model& model, const GradAdjust& adjust = nullptr,
            bool zero_grads = false);

  [[nodiscard]] const SgdOptions& options() const noexcept { return opts_; }
  void set_lr(float lr) noexcept { opts_.lr = lr; }

 private:
  SgdOptions opts_;
  std::vector<float> velocity_;  // lazily sized to the model's param count
};

}  // namespace groupfel::nn
