#include <cmath>

#include "nn/layer.hpp"
#include "util/check.hpp"

namespace groupfel::nn {

// ---------------- Linear ----------------

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_({in_, out_}),
      bias_({1, out_}),
      grad_w_({in_, out_}),
      grad_b_({1, out_}) {}

void Linear::init(runtime::Rng& rng) {
  // He initialization: suited to the ReLU networks this library builds.
  const float scale = std::sqrt(2.0f / static_cast<float>(in_));
  for (auto& w : weight_.data()) w = static_cast<float>(rng.normal()) * scale;
  bias_.zero();
}

Tensor Linear::forward(const Tensor& input, bool train) {
  GF_CHECK(input.rank() == 2 && input.dim(1) == in_,
           "Linear::forward: expected [N, ", in_, "], got ",
           input.shape_string());
  const std::size_t n = input.dim(0);
  Tensor out({n, out_});
  matmul(input, weight_, out);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < out_; ++j) out.at2(i, j) += bias_[j];
  if (train) cached_input_ = input;
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t n = grad_out.dim(0);
  GF_CHECK(cached_input_.size() != 0,
           "Linear::backward without forward(train=true)");
  GF_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_ &&
               n == cached_input_.dim(0),
           "Linear::backward: grad ", grad_out.shape_string(),
           " does not match cached input ", cached_input_.shape_string());
  // dW += X^T * dY ; db += column sums of dY ; dX = dY * W^T
  matmul_at_acc(cached_input_, grad_out, grad_w_);
  const float* go = grad_out.raw();
  float* gb = grad_b_.raw();
  for (std::size_t i = 0; i < n; ++i) {
    const float* grow = go + i * out_;
    for (std::size_t j = 0; j < out_; ++j) gb[j] += grow[j];
  }
  Tensor grad_in({n, in_});
  matmul_bt(grad_out, weight_, grad_in);
  return grad_in;
}

void Linear::for_each_param(
    const std::function<void(Tensor&, Tensor&)>& fn) {
  fn(weight_, grad_w_);
  fn(bias_, grad_b_);
}

void Linear::for_each_param(
    const std::function<void(const Tensor&, const Tensor&)>& fn) const {
  fn(weight_, grad_w_);
  fn(bias_, grad_b_);
}

std::size_t Linear::param_count() const { return weight_.size() + bias_.size(); }

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(in_, out_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

// ---------------- ReLU ----------------

Tensor ReLU::forward(const Tensor& input, bool train) {
  Tensor out = input;
  for (auto& v : out.data()) v = v > 0.0f ? v : 0.0f;
  if (train) cached_input_ = input;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  GF_CHECK_EQ(cached_input_.size(), grad_out.size(),
              "ReLU::backward shape mismatch");
  Tensor grad_in = grad_out;
  const auto xs = cached_input_.data();
  auto gs = grad_in.data();
  for (std::size_t i = 0; i < gs.size(); ++i)
    if (xs[i] <= 0.0f) gs[i] = 0.0f;
  return grad_in;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

// ---------------- Flatten ----------------

Tensor Flatten::forward(const Tensor& input, bool train) {
  GF_CHECK(input.rank() >= 2, "Flatten: rank < 2, got ",
           input.shape_string());
  if (train) cached_shape_ = input.shape();
  Tensor out = input;
  out.reshape({input.dim(0), input.size() / input.dim(0)});
  return out;
}

Tensor Flatten::backward(const Tensor& grad_out) {
  GF_CHECK(!cached_shape_.empty(),
           "Flatten::backward without forward(train=true)");
  Tensor grad_in = grad_out;
  grad_in.reshape(cached_shape_);
  return grad_in;
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>();
}

}  // namespace groupfel::nn
