#include <cmath>

#include "nn/layer.hpp"
#include "util/check.hpp"

namespace groupfel::nn {

// ---------------- Linear ----------------

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_({in_, out_}),
      bias_({1, out_}),
      grad_w_({in_, out_}),
      grad_b_({1, out_}) {}

void Linear::init(runtime::Rng& rng) {
  // He initialization: suited to the ReLU networks this library builds.
  const float scale = std::sqrt(2.0f / static_cast<float>(in_));
  for (auto& w : weight_.data()) w = static_cast<float>(rng.normal()) * scale;
  bias_.zero();
}

const Tensor& Linear::forward(const Tensor& input, bool train) {
  GF_CHECK(input.rank() == 2 && input.dim(1) == in_,
           "Linear::forward: expected [N, ", in_, "], got ",
           input.shape_string());
  const std::size_t n = input.dim(0);
  out_buf_.resize2(n, out_);
  matmul(input, weight_, out_buf_, sp_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < out_; ++j) out_buf_.at2(i, j) += bias_[j];
  if (train) cached_input_ = input;
  return out_buf_;
}

const Tensor& Linear::backward(const Tensor& grad_out) {
  const std::size_t n = grad_out.dim(0);
  GF_CHECK(cached_input_.size() != 0,
           "Linear::backward without forward(train=true)");
  GF_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_ &&
               n == cached_input_.dim(0),
           "Linear::backward: grad ", grad_out.shape_string(),
           " does not match cached input ", cached_input_.shape_string());
  // dW += X^T * dY ; db += column sums of dY ; dX = dY * W^T
  matmul_at_acc(cached_input_, grad_out, grad_w_, sp_);
  const float* go = grad_out.raw();
  float* gb = grad_b_.raw();
  for (std::size_t i = 0; i < n; ++i) {
    const float* grow = go + i * out_;
    for (std::size_t j = 0; j < out_; ++j) gb[j] += grow[j];
  }
  grad_in_.resize2(n, in_);
  matmul_bt(grad_out, weight_, grad_in_, sp_);
  return grad_in_;
}

void Linear::for_each_param(
    util::FunctionRef<void(Tensor&, Tensor&)> fn) {
  fn(weight_, grad_w_);
  fn(bias_, grad_b_);
}

void Linear::for_each_param(
    util::FunctionRef<void(const Tensor&, const Tensor&)> fn) const {
  fn(weight_, grad_w_);
  fn(bias_, grad_b_);
}

std::size_t Linear::param_count() const { return weight_.size() + bias_.size(); }

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(in_, out_);
  copy->sp_ = sp_;
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

// ---------------- ReLU ----------------

const Tensor& ReLU::forward(const Tensor& input, bool train) {
  out_buf_ = input;
  for (auto& v : out_buf_.data()) v = v > 0.0f ? v : 0.0f;
  if (train) cached_input_ = input;
  return out_buf_;
}

const Tensor& ReLU::backward(const Tensor& grad_out) {
  GF_CHECK_EQ(cached_input_.size(), grad_out.size(),
              "ReLU::backward shape mismatch");
  grad_in_ = grad_out;
  const auto xs = cached_input_.data();
  auto gs = grad_in_.data();
  for (std::size_t i = 0; i < gs.size(); ++i)
    if (xs[i] <= 0.0f) gs[i] = 0.0f;
  return grad_in_;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

// ---------------- Flatten ----------------

const Tensor& Flatten::forward(const Tensor& input, bool train) {
  GF_CHECK(input.rank() >= 2, "Flatten: rank < 2, got ",
           input.shape_string());
  if (train) cached_shape_ = input.shape();
  out_buf_ = input;
  out_buf_.resize2(input.dim(0), input.size() / input.dim(0));
  return out_buf_;
}

const Tensor& Flatten::backward(const Tensor& grad_out) {
  GF_CHECK(!cached_shape_.empty(),
           "Flatten::backward without forward(train=true)");
  grad_in_ = grad_out;
  grad_in_.resize(cached_shape_);
  return grad_in_;
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>();
}

}  // namespace groupfel::nn
