// Layer interface for the from-scratch NN library.
//
// Each layer owns its parameters and their gradients and implements manual
// reverse-mode differentiation: forward() caches whatever backward() needs.
// A layer instance therefore serves exactly one model replica; federated
// clients clone the model instead of sharing layers.
//
// forward()/backward() return references into layer-owned persistent
// buffers (or, for pass-through layers, the input itself). A returned
// reference stays valid until the same layer's next forward()/backward()
// call; repeated same-shape steps therefore perform zero tensor
// constructions (see nn::tensor_construction_count()).
#pragma once

#include <memory>
#include <string>

#include "nn/tensor.hpp"
#include "runtime/rng.hpp"
#include "util/function_ref.hpp"

namespace groupfel::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output into a layer-owned buffer. `train` enables
  /// training-only behaviour (activation caching for backward).
  virtual const Tensor& forward(const Tensor& input, bool train) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input) in a layer-owned buffer. Must be called after a
  /// forward(train=true).
  virtual const Tensor& backward(const Tensor& grad_out) = 0;

  /// Visits every (parameter, gradient) tensor pair. Parameter-free layers
  /// keep the default no-op.
  virtual void for_each_param(
      util::FunctionRef<void(Tensor&, Tensor&)> fn) {
    (void)fn;
  }

  /// Read-only visit of every (parameter, gradient) tensor pair — lets
  /// const models export flat parameter/gradient views without const_cast.
  virtual void for_each_param(
      util::FunctionRef<void(const Tensor&, const Tensor&)> fn)
      const {
    (void)fn;
  }

  /// Total number of scalar parameters.
  [[nodiscard]] virtual std::size_t param_count() const { return 0; }

  /// Deep copy with identical parameters and fresh (empty) activation cache.
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  /// Re-randomizes parameters (He initialization where applicable).
  virtual void init(runtime::Rng& rng) { (void)rng; }

  /// Selects the GEMM operand storage width for this layer's forward and
  /// backward passes (fp32 accumulation regardless). Layers without GEMMs
  /// keep the default no-op. clone() preserves the setting.
  virtual void set_compute_precision(StoragePrecision sp) { (void)sp; }

  [[nodiscard]] virtual std::string name() const = 0;
};

// ---- Dense layers (layers.cpp) ----

/// Fully connected y = xW + b; input [N, in], output [N, out].
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  const Tensor& forward(const Tensor& input, bool train) override;
  const Tensor& backward(const Tensor& grad_out) override;
  void for_each_param(
      util::FunctionRef<void(Tensor&, Tensor&)> fn) override;
  void for_each_param(util::FunctionRef<void(const Tensor&, const Tensor&)> fn) const override;
  [[nodiscard]] std::size_t param_count() const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  void init(runtime::Rng& rng) override;
  void set_compute_precision(StoragePrecision sp) override { sp_ = sp; }
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_, out_;
  StoragePrecision sp_ = StoragePrecision::kFp32;
  Tensor weight_;   // [in, out]
  Tensor bias_;     // [1, out]
  Tensor grad_w_, grad_b_;
  Tensor cached_input_;
  Tensor out_buf_, grad_in_;
};

/// Elementwise max(x, 0).
class ReLU final : public Layer {
 public:
  const Tensor& forward(const Tensor& input, bool train) override;
  const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
  Tensor out_buf_, grad_in_;
};

/// Collapses [N, C, H, W] (or any rank >= 2) to [N, rest].
class Flatten final : public Layer {
 public:
  const Tensor& forward(const Tensor& input, bool train) override;
  const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> cached_shape_;
  Tensor out_buf_, grad_in_;
};

// ---- Convolutional layers (conv.cpp) ----

/// 2-D convolution with square kernel, stride 1, symmetric zero padding.
/// Input [N, Cin, H, W] -> output [N, Cout, H', W'].
/// Forward and backward lower to GEMM via im2col/col2im (nn/im2col.hpp);
/// scratch comes from runtime::WorkspaceArena, so steady-state training
/// does not allocate. The original loop nests live on as the
/// conv_reference_* oracles below.
class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t padding);

  const Tensor& forward(const Tensor& input, bool train) override;
  const Tensor& backward(const Tensor& grad_out) override;
  void for_each_param(
      util::FunctionRef<void(Tensor&, Tensor&)> fn) override;
  void for_each_param(util::FunctionRef<void(const Tensor&, const Tensor&)> fn) const override;
  [[nodiscard]] std::size_t param_count() const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  void init(runtime::Rng& rng) override;
  void set_compute_precision(StoragePrecision sp) override { sp_ = sp; }
  [[nodiscard]] std::string name() const override { return "Conv2d"; }

 private:
  std::size_t cin_, cout_, k_, pad_;
  StoragePrecision sp_ = StoragePrecision::kFp32;
  Tensor weight_;  // [Cout, Cin, k, k]
  Tensor bias_;    // [1, Cout]
  Tensor grad_w_, grad_b_;
  Tensor cached_input_;
  Tensor out_buf_, grad_in_;
};

// ---- Naive convolution oracles (conv.cpp) ----
//
// The original scalar loop nests, retained as the correctness reference for
// the im2col path (tests/conv_reference_test.cpp, bench/micro_kernels).
// Padding bounds are hoisted out of the kernel loops per output pixel so
// the oracle itself is not pathologically slow at test scale.

/// Reference forward: weight [Cout, Cin, k, k], bias [1, Cout].
[[nodiscard]] Tensor conv_reference_forward(const Tensor& x,
                                            const Tensor& weight,
                                            const Tensor& bias,
                                            std::size_t pad);

/// Reference backward: accumulates into grad_w/grad_b (shaped like
/// weight/bias) and returns dL/dx.
[[nodiscard]] Tensor conv_reference_backward(const Tensor& x,
                                             const Tensor& weight,
                                             const Tensor& grad_out,
                                             std::size_t pad, Tensor& grad_w,
                                             Tensor& grad_b);

/// Non-overlapping max pooling with square window.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  const Tensor& forward(const Tensor& input, bool train) override;
  const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> cached_shape_;
  Tensor out_buf_, grad_in_;
};

/// Global average pooling [N, C, H, W] -> [N, C].
class GlobalAvgPool final : public Layer {
 public:
  const Tensor& forward(const Tensor& input, bool train) override;
  const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<std::size_t> cached_shape_;
  Tensor out_buf_, grad_in_;
};

}  // namespace groupfel::nn
