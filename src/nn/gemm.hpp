// Blocked, packed single-precision GEMM — the compute core behind
// matmul/matmul_bt/matmul_at and the im2col convolution path.
//
// Scheme (GotoBLAS/BLIS): C is computed in Nc-wide column blocks; for each
// Kc-deep slice, B is packed into Kc×NR column slivers (streamed from L1)
// and A into MR-row slivers of an Mc×Kc panel (resident in L2). The
// MR×NR micro-kernel is plain C with constant trip counts so the
// autovectorizer lifts it to the widest SIMD the build allows (this
// translation unit is compiled -O3 -ffast-math and, when supported,
// -march=native — see src/CMakeLists.txt).
//
// Transposed operands are handled by the pack routines via strided views,
// so A·B, A·Bᵀ, and Aᵀ·B share one kernel. Row panels of C are split over
// runtime::ThreadPool for large shapes; each panel's accumulation order is
// fixed, so results are bit-identical for any pool size.
#pragma once

#include <cstddef>

namespace groupfel::nn::detail {

/// Strided read-only matrix view: element (r, c) = p[r * rs + c * cs].
struct MatView {
  const float* p;
  std::size_t rs;  ///< row stride
  std::size_t cs;  ///< column stride
};

/// C (row-major m×n, leading dimension n) = A(m×k) · B(k×n), overwriting C.
/// A and B are strided views, so callers express transposes as views of the
/// untransposed storage.
void gemm(std::size_t m, std::size_t n, std::size_t k, MatView a, MatView b,
          float* c);

/// C += A·B — identical dispatch to gemm() minus the zero-fill. Lets weight
/// gradients accumulate across micro-batches directly into the gradient
/// tensor, with no staging buffer and no extra elementwise add pass.
void gemm_acc(std::size_t m, std::size_t n, std::size_t k, MatView a,
              MatView b, float* c);

}  // namespace groupfel::nn::detail
