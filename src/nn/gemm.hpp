// Blocked, packed single-precision GEMM — the compute core behind
// matmul/matmul_bt/matmul_at and the im2col convolution path.
//
// Scheme (GotoBLAS/BLIS): C is computed in Nc-wide column blocks; for each
// Kc-deep slice, B is packed into Kc×NR column slivers (streamed from L1)
// and A into MR-row slivers of an Mc×Kc panel (resident in L2). The
// MR×NR micro-kernel is plain C with constant trip counts so the
// autovectorizer lifts it to the widest SIMD the build allows (this
// translation unit is compiled -O3 -ffast-math and, when supported,
// -march=native — see src/CMakeLists.txt).
//
// Transposed operands are handled by the pack routines via strided views,
// so A·B, A·Bᵀ, and Aᵀ·B share one kernel. Row panels of C are split over
// runtime::ThreadPool for large shapes; each panel's accumulation order is
// fixed, so results are bit-identical for any pool size.
//
// Mixed precision: gemm/gemm_acc take a StoragePrecision selector. For bf16
// and fp16 the pack step rounds each operand element once (RNE, via
// util/half.hpp) and stores it half-width, so the blocked micro-kernel
// streams half the bytes while still accumulating in fp32. On hosts with
// AMX-BF16 the bf16 path runs on tile units (TDPBF16PS). Shapes the fp32
// dispatch would route around the blocked path instead compute on
// storage-rounded operand copies, so the value semantics — "every operand
// element passed through the half format exactly once" — hold on every
// shape, and results remain bit-identical across pool sizes per precision.
#pragma once

#include <cstddef>

#include "nn/precision.hpp"

namespace groupfel::nn::detail {

/// Strided read-only matrix view: element (r, c) = p[r * rs + c * cs].
struct MatView {
  const float* p;
  std::size_t rs;  ///< row stride
  std::size_t cs;  ///< column stride
};

/// C (row-major m×n, leading dimension n) = A(m×k) · B(k×n), overwriting C.
/// A and B are strided views, so callers express transposes as views of the
/// untransposed storage. `sp` selects the operand storage width (fp32
/// default; accumulation is always fp32).
void gemm(std::size_t m, std::size_t n, std::size_t k, MatView a, MatView b,
          float* c, StoragePrecision sp = StoragePrecision::kFp32);

/// C += A·B — identical dispatch to gemm() minus the zero-fill. Lets weight
/// gradients accumulate across micro-batches directly into the gradient
/// tensor, with no staging buffer and no extra elementwise add pass.
void gemm_acc(std::size_t m, std::size_t n, std::size_t k, MatView a,
              MatView b, float* c,
              StoragePrecision sp = StoragePrecision::kFp32);

}  // namespace groupfel::nn::detail
