#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace groupfel::nn {

namespace {
double loss_at(Model& model, const Tensor& input,
               std::span<const std::int32_t> labels) {
  const Tensor logits = model.forward(input, /*train=*/false);
  return softmax_cross_entropy(logits, labels).loss;
}
}  // namespace

GradCheckResult check_gradients(Model& model, const Tensor& input,
                                std::span<const std::int32_t> labels,
                                double eps, double tol,
                                std::size_t max_params,
                                double max_fail_fraction) {
  // Analytic gradients.
  model.zero_grad();
  const Tensor logits = model.forward(input, /*train=*/true);
  const LossResult lr = softmax_cross_entropy(logits, labels);
  model.backward(lr.grad);
  const std::vector<float> analytic = model.flat_gradients();
  std::vector<float> params = model.flat_parameters();

  const std::size_t total = params.size();
  const std::size_t stride = std::max<std::size_t>(1, total / max_params);

  GradCheckResult res;
  for (std::size_t i = 0; i < total; i += stride) {
    const float original = params[i];
    params[i] = original + static_cast<float>(eps);
    model.set_flat_parameters(params);
    const double lp = loss_at(model, input, labels);
    params[i] = original - static_cast<float>(eps);
    model.set_flat_parameters(params);
    const double lm = loss_at(model, input, labels);
    params[i] = original;

    const double numeric = (lp - lm) / (2.0 * eps);
    const double a = static_cast<double>(analytic[i]);
    const double abs_err = std::abs(numeric - a);
    const double denom = std::max({std::abs(numeric), std::abs(a), 1e-8});
    res.max_abs_error = std::max(res.max_abs_error, abs_err);
    res.max_rel_error = std::max(res.max_rel_error, abs_err / denom);
    ++res.checked;
    // Pass rule per parameter: small relative error, OR tiny absolute error
    // (gradient ~0, where fp32 cancellation dominates the relative measure).
    if (abs_err / denom > tol && abs_err > tol * 1e-2) ++res.failed;
  }
  model.set_flat_parameters(params);
  res.passed = static_cast<double>(res.failed) <=
               max_fail_fraction * static_cast<double>(res.checked);
  return res;
}

}  // namespace groupfel::nn
