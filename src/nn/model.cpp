#include "nn/model.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/thread_pool.hpp"
#include "util/check.hpp"

namespace groupfel::nn {

Model& Model::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::init(runtime::Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

const Tensor& Model::forward(const Tensor& input, bool train) {
  const Tensor* x = &input;
  for (auto& l : layers_) x = &l->forward(*x, train);
  return *x;
}

void Model::backward(const Tensor& grad_out) {
  const Tensor* g = &grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = &(*it)->backward(*g);
}

void Model::zero_grad() {
  for (auto& l : layers_)
    l->for_each_param([](Tensor&, Tensor& grad) { grad.zero(); });
}

std::size_t Model::param_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->param_count();
  return n;
}

std::vector<float> Model::flat_parameters() const {
  std::vector<float> flat(param_count());
  flat_parameters_into(flat);
  return flat;
}

void Model::flat_parameters_into(std::span<float> out) const {
  GF_CHECK_EQ(out.size(), param_count(), "flat_parameters_into");
  std::size_t off = 0;
  for_each_param([&](const Tensor& p, const Tensor&) {
    std::copy_n(p.data().begin(), p.size(),
                out.begin() + static_cast<std::ptrdiff_t>(off));
    off += p.size();
  });
}

void Model::set_flat_parameters(std::span<const float> flat) {
  GF_CHECK_EQ(flat.size(), param_count(), "set_flat_parameters");
  std::size_t off = 0;
  for (auto& l : layers_)
    l->for_each_param([&](Tensor& p, Tensor&) {
      std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(off), p.size(),
                  p.data().begin());
      off += p.size();
    });
}

std::vector<float> Model::flat_gradients() const {
  std::vector<float> flat(param_count());
  flat_gradients_into(flat);
  return flat;
}

void Model::flat_gradients_into(std::span<float> out) const {
  GF_CHECK_EQ(out.size(), param_count(), "flat_gradients_into");
  std::size_t off = 0;
  for_each_param([&](const Tensor&, const Tensor& g) {
    std::copy_n(g.data().begin(), g.size(),
                out.begin() + static_cast<std::ptrdiff_t>(off));
    off += g.size();
  });
}

void Model::for_each_param(util::FunctionRef<void(Tensor&, Tensor&)> fn) {
  for (auto& l : layers_) l->for_each_param(fn);
}

void Model::for_each_param(
    util::FunctionRef<void(const Tensor&, const Tensor&)> fn) const {
  for (const auto& l : layers_) {
    const Layer& layer = *l;
    layer.for_each_param(fn);
  }
}

Model Model::clone() const {
  Model copy;
  for (const auto& l : layers_) copy.layers_.push_back(l->clone());
  return copy;
}

void Model::set_compute_precision(StoragePrecision sp) {
  for (auto& l : layers_) l->set_compute_precision(sp);
}

void axpy(std::vector<float>& out, std::span<const float> v, float scale) {
  GF_CHECK_EQ(out.size(), v.size(), "axpy");
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += scale * v[i];
}

std::vector<float> weighted_average(const std::vector<std::vector<float>>& vs,
                                    std::span<const double> weights) {
  GF_CHECK(!vs.empty(), "weighted_average: empty input");
  std::vector<std::span<const float>> views(vs.begin(), vs.end());
  std::vector<float> out(vs[0].size());
  weighted_average_into(out, views, weights);
  return out;
}

namespace {
/// Reduction block size in elements. Fixed by the parameter count alone so
/// the work decomposition — and therefore the result — never depends on how
/// many threads execute it.
constexpr std::size_t kReduceBlock = 8192;
}  // namespace

void weighted_average_into(std::span<float> out,
                           std::span<const std::span<const float>> vs,
                           std::span<const double> weights,
                           runtime::ThreadPool* pool) {
  GF_CHECK(!vs.empty(), "weighted_average_into: empty input");
  GF_CHECK_EQ(vs.size(), weights.size(),
              "weighted_average_into: one weight per model");
  const std::size_t dim = out.size();
  for (std::size_t i = 0; i < vs.size(); ++i)
    GF_CHECK_EQ(vs[i].size(), dim, "weighted_average_into: ragged input ", i);

  // Each element sums over models in index order in double precision — the
  // same per-element order as the original serial loop — so blocking (and
  // running blocks on any number of threads) cannot change a single bit.
  const auto reduce_block = [&](std::size_t bi) {
    const std::size_t j0 = bi * kReduceBlock;
    const std::size_t j1 = std::min(dim, j0 + kReduceBlock);
    for (std::size_t j = j0; j < j1; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < vs.size(); ++i)
        s += weights[i] * static_cast<double>(vs[i][j]);
      out[j] = static_cast<float>(s);
    }
  };
  const std::size_t blocks = (dim + kReduceBlock - 1) / kReduceBlock;
  if (pool != nullptr && pool->size() > 1 && blocks > 1) {
    pool->parallel_for(blocks, reduce_block);
  } else {
    for (std::size_t bi = 0; bi < blocks; ++bi) reduce_block(bi);
  }
}

double l2_distance(std::span<const float> a, std::span<const float> b) {
  GF_CHECK_EQ(a.size(), b.size(), "l2_distance");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace groupfel::nn
