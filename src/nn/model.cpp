#include "nn/model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace groupfel::nn {

Model& Model::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::init(runtime::Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

Tensor Model::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, train);
  return x;
}

void Model::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
}

void Model::zero_grad() {
  for (auto& l : layers_)
    l->for_each_param([](Tensor&, Tensor& grad) { grad.zero(); });
}

std::size_t Model::param_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->param_count();
  return n;
}

std::vector<float> Model::flat_parameters() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const auto& l : layers_)
    const_cast<Layer&>(*l).for_each_param([&](Tensor& p, Tensor&) {
      flat.insert(flat.end(), p.data().begin(), p.data().end());
    });
  return flat;
}

void Model::set_flat_parameters(std::span<const float> flat) {
  GF_CHECK_EQ(flat.size(), param_count(), "set_flat_parameters");
  std::size_t off = 0;
  for (auto& l : layers_)
    l->for_each_param([&](Tensor& p, Tensor&) {
      std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(off), p.size(),
                  p.data().begin());
      off += p.size();
    });
}

std::vector<float> Model::flat_gradients() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const auto& l : layers_)
    const_cast<Layer&>(*l).for_each_param([&](Tensor&, Tensor& g) {
      flat.insert(flat.end(), g.data().begin(), g.data().end());
    });
  return flat;
}

void Model::for_each_param(const std::function<void(Tensor&, Tensor&)>& fn) {
  for (auto& l : layers_) l->for_each_param(fn);
}

Model Model::clone() const {
  Model copy;
  for (const auto& l : layers_) copy.layers_.push_back(l->clone());
  return copy;
}

void axpy(std::vector<float>& out, std::span<const float> v, float scale) {
  GF_CHECK_EQ(out.size(), v.size(), "axpy");
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += scale * v[i];
}

std::vector<float> weighted_average(const std::vector<std::vector<float>>& vs,
                                    std::span<const double> weights) {
  GF_CHECK(!vs.empty(), "weighted_average: empty input");
  GF_CHECK_EQ(vs.size(), weights.size(),
              "weighted_average: one weight per model");
  std::vector<double> acc(vs[0].size(), 0.0);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    GF_CHECK_EQ(vs[i].size(), acc.size(), "weighted_average: ragged input ",
                i);
    const double w = weights[i];
    for (std::size_t j = 0; j < acc.size(); ++j)
      acc[j] += w * static_cast<double>(vs[i][j]);
  }
  std::vector<float> out(acc.size());
  for (std::size_t j = 0; j < acc.size(); ++j)
    out[j] = static_cast<float>(acc[j]);
  return out;
}

double l2_distance(std::span<const float> a, std::span<const float> b) {
  GF_CHECK_EQ(a.size(), b.size(), "l2_distance");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace groupfel::nn
