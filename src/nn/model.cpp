#include "nn/model.hpp"

#include <cmath>
#include <stdexcept>

namespace groupfel::nn {

Model& Model::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::init(runtime::Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

Tensor Model::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, train);
  return x;
}

void Model::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
}

void Model::zero_grad() {
  for (auto& l : layers_)
    l->for_each_param([](Tensor&, Tensor& grad) { grad.zero(); });
}

std::size_t Model::param_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->param_count();
  return n;
}

std::vector<float> Model::flat_parameters() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const auto& l : layers_)
    const_cast<Layer&>(*l).for_each_param([&](Tensor& p, Tensor&) {
      flat.insert(flat.end(), p.data().begin(), p.data().end());
    });
  return flat;
}

void Model::set_flat_parameters(std::span<const float> flat) {
  if (flat.size() != param_count())
    throw std::invalid_argument("set_flat_parameters: size mismatch");
  std::size_t off = 0;
  for (auto& l : layers_)
    l->for_each_param([&](Tensor& p, Tensor&) {
      std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(off), p.size(),
                  p.data().begin());
      off += p.size();
    });
}

std::vector<float> Model::flat_gradients() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const auto& l : layers_)
    const_cast<Layer&>(*l).for_each_param([&](Tensor&, Tensor& g) {
      flat.insert(flat.end(), g.data().begin(), g.data().end());
    });
  return flat;
}

void Model::for_each_param(const std::function<void(Tensor&, Tensor&)>& fn) {
  for (auto& l : layers_) l->for_each_param(fn);
}

Model Model::clone() const {
  Model copy;
  for (const auto& l : layers_) copy.layers_.push_back(l->clone());
  return copy;
}

void axpy(std::vector<float>& out, std::span<const float> v, float scale) {
  if (out.size() != v.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += scale * v[i];
}

std::vector<float> weighted_average(const std::vector<std::vector<float>>& vs,
                                    std::span<const double> weights) {
  if (vs.empty()) throw std::invalid_argument("weighted_average: empty input");
  if (vs.size() != weights.size())
    throw std::invalid_argument("weighted_average: weight count mismatch");
  std::vector<double> acc(vs[0].size(), 0.0);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (vs[i].size() != acc.size())
      throw std::invalid_argument("weighted_average: ragged inputs");
    const double w = weights[i];
    for (std::size_t j = 0; j < acc.size(); ++j)
      acc[j] += w * static_cast<double>(vs[i][j]);
  }
  std::vector<float> out(acc.size());
  for (std::size_t j = 0; j < acc.size(); ++j)
    out[j] = static_cast<float>(acc[j]);
  return out;
}

double l2_distance(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("l2_distance: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace groupfel::nn
