// Model architectures from the paper's evaluation (§7.1) plus a fast MLP
// surrogate used by the benchmark harness:
//  - make_resnet3: "3-block ResNet" analogue for the CIFAR-10 task.
//  - make_cnn5:    "5-layer CNN" for the SpeechCommands task.
//  - make_mlp:     compact MLP over embedded features — same FL dynamics,
//                  tractable on one CPU core (see DESIGN.md substitutions).
#pragma once

#include "nn/model.hpp"

namespace groupfel::nn {

/// Basic residual block: y = ReLU(proj(x) + conv2(ReLU(conv1(x)))).
/// The 1x1 projection is used when in/out channel counts differ.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::size_t in_channels, std::size_t out_channels);

  const Tensor& forward(const Tensor& input, bool train) override;
  const Tensor& backward(const Tensor& grad_out) override;
  void for_each_param(
      util::FunctionRef<void(Tensor&, Tensor&)> fn) override;
  void for_each_param(util::FunctionRef<void(const Tensor&, const Tensor&)> fn) const override;
  [[nodiscard]] std::size_t param_count() const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  void init(runtime::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "ResidualBlock"; }

 private:
  ResidualBlock() = default;  // for clone()
  std::unique_ptr<Conv2d> conv1_, conv2_, proj_;  // proj_ may be null
  std::unique_ptr<ReLU> relu_mid_, relu_out_;
  Tensor preact_;    // conv path + skip, before the final ReLU
  Tensor grad_in_;   // accumulated dL/dx (conv path + skip path)
};

/// 3-residual-block ResNet for [N, channels, side, side] inputs.
[[nodiscard]] Model make_resnet3(std::size_t in_channels, std::size_t side,
                                 std::size_t num_classes,
                                 std::size_t base_width = 8);

/// 5-layer CNN (3 conv + 2 dense) for lightweight audio-style inputs.
[[nodiscard]] Model make_cnn5(std::size_t in_channels, std::size_t height,
                              std::size_t width, std::size_t num_classes);

/// 2-hidden-layer MLP for [N, features] inputs.
[[nodiscard]] Model make_mlp(std::size_t in_features, std::size_t hidden,
                             std::size_t num_classes);

}  // namespace groupfel::nn
