#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace groupfel::nn {

void save_checkpoint(const std::string& path, std::span<const float> params) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);

  const std::uint64_t magic = kCheckpointMagic;
  const std::uint64_t count = params.size();
  const auto* raw = reinterpret_cast<const std::byte*>(params.data());
  const std::uint64_t crc = fnv1a({raw, params.size_bytes()});

  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size_bytes()));
  if (!out) throw std::runtime_error("save_checkpoint: write failed");
}

std::vector<float> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);

  std::uint64_t magic = 0, count = 0, crc = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!in || magic != kCheckpointMagic)
    throw std::runtime_error("load_checkpoint: bad header in " + path);

  std::vector<float> params(count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in || in.gcount() != static_cast<std::streamsize>(count * sizeof(float)))
    throw std::runtime_error("load_checkpoint: truncated " + path);

  const auto* raw = reinterpret_cast<const std::byte*>(params.data());
  if (fnv1a({raw, count * sizeof(float)}) != crc)
    throw std::runtime_error("load_checkpoint: checksum mismatch in " + path);
  return params;
}

}  // namespace groupfel::nn
