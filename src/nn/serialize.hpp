// Model checkpointing and binary struct codecs.
//
// Two layers share one discipline (magic + FNV-1a checksum, verified on
// every load):
//   * the flat-parameter checkpoint format below, so trained global models
//     survive across processes (examples save, downstream tools load);
//   * ByteWriter/ByteReader, the primitive codec the sweep wire protocol
//     builds struct serializers on (core/sweep_codec.hpp) — framing and
//     checksums are added by runtime/proc/wire.hpp around these payloads.
//
// Checkpoint layout (little-endian):
//   magic   u64   0x4746454C'43505431 ("GFEL" "CPT1")
//   count   u64   number of float32 parameters
//   crc     u64   FNV-1a over the raw parameter bytes
//   data    f32[count]
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/proc/wire.hpp"

namespace groupfel::nn {

inline constexpr std::uint64_t kCheckpointMagic = 0x4746454C43505431ull;

/// Writes `params` to `path`; throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, std::span<const float> params);

/// Reads a checkpoint; throws std::runtime_error on I/O failure, bad magic,
/// truncation, or checksum mismatch.
[[nodiscard]] std::vector<float> load_checkpoint(const std::string& path);

/// FNV-1a over arbitrary bytes (exposed for tests). Same function the wire
/// protocol frames use — delegates to runtime::proc::fnv1a.
[[nodiscard]] inline std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  return runtime::proc::fnv1a(bytes);
}

// ---- Primitive byte codec -------------------------------------------------
//
// Fixed-width scalars are memcpy'd in native byte order (payloads never
// cross machines: they cross a pipe between a forked worker and its parent,
// or a checkpoint restart on the same host). Sequences are length-prefixed
// with u64 counts. ByteReader throws std::runtime_error on any overrun, so
// a truncated or mismatched payload is always a diagnosable error, never a
// silent misread.

class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f32(float v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    size(s.size());
    raw(s.data(), s.size());
  }

  void f32_span(std::span<const float> v) {
    size(v.size());
    raw(v.data(), v.size_bytes());
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte> take() noexcept {
    return std::move(buf_);
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> buf) noexcept : buf_(buf) {}

  [[nodiscard]] std::uint8_t u8() { return scalar<std::uint8_t>(); }
  [[nodiscard]] std::uint32_t u32() { return scalar<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return scalar<std::uint64_t>(); }
  [[nodiscard]] float f32() { return scalar<float>(); }
  [[nodiscard]] double f64() { return scalar<double>(); }
  [[nodiscard]] bool boolean() { return u8() != 0; }
  /// Plain integer value (cell index, group size, ...) — NOT a length
  /// prefix; use count() when the value sizes a following sequence.
  [[nodiscard]] std::size_t size() { return static_cast<std::size_t>(u64()); }

  /// Length prefix for a sequence whose elements occupy at least
  /// `min_elem_bytes` each, bounded by the bytes actually present — a
  /// corrupt count fails cleanly instead of driving a huge allocation.
  [[nodiscard]] std::size_t count(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    if (min_elem_bytes == 0 || n > remaining() / min_elem_bytes)
      throw std::runtime_error("ByteReader: sequence longer than payload");
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::string str() {
    const std::size_t n = count(1);
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }

  [[nodiscard]] std::vector<float> f32_vec() {
    const std::size_t n = count(sizeof(float));
    std::vector<float> v(n);
    raw(v.data(), n * sizeof(float));
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return buf_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

  /// Throws unless the payload was consumed exactly — catches codec drift
  /// (struct gained a field one side doesn't know about).
  void expect_done() const {
    if (!done())
      throw std::runtime_error(
          "ByteReader: " + std::to_string(remaining()) +
          " unconsumed payload bytes (codec version mismatch?)");
  }

 private:
  template <typename T>
  [[nodiscard]] T scalar() {
    T v;
    raw(&v, sizeof(T));
    return v;
  }

  void raw(void* out, std::size_t n) {
    if (remaining() < n)
      throw std::runtime_error("ByteReader: truncated payload");
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
  }

  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace groupfel::nn
