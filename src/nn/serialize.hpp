// Model checkpointing: a small self-describing binary format for flat
// parameter vectors, so trained global models survive across processes
// (examples save, downstream tools load).
//
// Layout (little-endian):
//   magic   u64   0x4746454C'43505431 ("GFEL" "CPT1")
//   count   u64   number of float32 parameters
//   crc     u64   FNV-1a over the raw parameter bytes
//   data    f32[count]
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace groupfel::nn {

inline constexpr std::uint64_t kCheckpointMagic = 0x4746454C43505431ull;

/// Writes `params` to `path`; throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, std::span<const float> params);

/// Reads a checkpoint; throws std::runtime_error on I/O failure, bad magic,
/// truncation, or checksum mismatch.
[[nodiscard]] std::vector<float> load_checkpoint(const std::string& path);

/// FNV-1a over arbitrary bytes (exposed for tests).
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::byte> bytes);

}  // namespace groupfel::nn
