#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace groupfel::nn {

// ---------------- Sigmoid ----------------

const Tensor& Sigmoid::forward(const Tensor& input, bool train) {
  out_buf_ = input;
  for (auto& v : out_buf_.data())
    v = 1.0f / (1.0f + std::exp(-v));
  if (train) cached_output_ = out_buf_;
  return out_buf_;
}

const Tensor& Sigmoid::backward(const Tensor& grad_out) {
  if (cached_output_.size() != grad_out.size())
    throw std::logic_error("Sigmoid::backward without forward(train=true)");
  grad_in_ = grad_out;
  auto g = grad_in_.data();
  const auto y = cached_output_.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= y[i] * (1.0f - y[i]);
  return grad_in_;
}

std::unique_ptr<Layer> Sigmoid::clone() const {
  return std::make_unique<Sigmoid>();
}

// ---------------- Tanh ----------------

const Tensor& Tanh::forward(const Tensor& input, bool train) {
  out_buf_ = input;
  for (auto& v : out_buf_.data()) v = std::tanh(v);
  if (train) cached_output_ = out_buf_;
  return out_buf_;
}

const Tensor& Tanh::backward(const Tensor& grad_out) {
  if (cached_output_.size() != grad_out.size())
    throw std::logic_error("Tanh::backward without forward(train=true)");
  grad_in_ = grad_out;
  auto g = grad_in_.data();
  const auto y = cached_output_.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0f - y[i] * y[i];
  return grad_in_;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

// ---------------- Dropout ----------------

Dropout::Dropout(float p, std::uint64_t seed)
    : p_(p), seed_(seed), mask_rng_(seed) {
  if (p_ < 0.0f || p_ >= 1.0f)
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
}

void Dropout::init(runtime::Rng& rng) {
  // Derive a fresh deterministic mask stream from the model init stream.
  seed_ = rng.next_u64();
  mask_rng_ = runtime::Rng(seed_);
}

const Tensor& Dropout::forward(const Tensor& input, bool train) {
  if (!train || p_ == 0.0f) {
    mask_.clear();
    return input;  // pass-through: identity at inference
  }
  out_buf_ = input;
  mask_.resize(input.size());
  const float keep = 1.0f - p_;
  const float scale = 1.0f / keep;
  auto data = out_buf_.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const bool kept = mask_rng_.next_double() < static_cast<double>(keep);
    mask_[i] = kept ? scale : 0.0f;
    data[i] *= mask_[i];
  }
  return out_buf_;
}

const Tensor& Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;  // eval-mode or p == 0 forward
  if (mask_.size() != grad_out.size())
    throw std::logic_error("Dropout::backward: mask/grad size mismatch");
  grad_in_ = grad_out;
  auto g = grad_in_.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= mask_[i];
  return grad_in_;
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(p_, seed_);
}

// ---------------- AvgPool2d ----------------

AvgPool2d::AvgPool2d(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument("AvgPool2d: window == 0");
}

const Tensor& AvgPool2d::forward(const Tensor& input, bool train) {
  if (input.rank() != 4)
    throw std::invalid_argument("AvgPool2d: expected 4-D input");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  const std::size_t ho = h / window_, wo = w / window_;
  if (ho == 0 || wo == 0)
    throw std::invalid_argument("AvgPool2d: window larger than input");
  out_buf_.resize4(n, c, ho, wo);
  Tensor& out = out_buf_;
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::size_t ni = 0; ni < n; ++ni)
    for (std::size_t ci = 0; ci < c; ++ci)
      for (std::size_t oy = 0; oy < ho; ++oy)
        for (std::size_t ox = 0; ox < wo; ++ox) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < window_; ++ky)
            for (std::size_t kx = 0; kx < window_; ++kx)
              acc += input.at4(ni, ci, oy * window_ + ky, ox * window_ + kx);
          out.at4(ni, ci, oy, ox) = acc * inv;
        }
  if (train) cached_shape_ = input.shape();
  return out;
}

const Tensor& AvgPool2d::backward(const Tensor& grad_out) {
  if (cached_shape_.empty())
    throw std::logic_error("AvgPool2d::backward without forward(train=true)");
  grad_in_.resize(cached_shape_);
  grad_in_.zero();  // window loop below accumulates
  Tensor& grad_in = grad_in_;
  const std::size_t ho = grad_out.dim(2), wo = grad_out.dim(3);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::size_t ni = 0; ni < grad_out.dim(0); ++ni)
    for (std::size_t ci = 0; ci < grad_out.dim(1); ++ci)
      for (std::size_t oy = 0; oy < ho; ++oy)
        for (std::size_t ox = 0; ox < wo; ++ox) {
          const float g = grad_out.at4(ni, ci, oy, ox) * inv;
          for (std::size_t ky = 0; ky < window_; ++ky)
            for (std::size_t kx = 0; kx < window_; ++kx)
              grad_in.at4(ni, ci, oy * window_ + ky, ox * window_ + kx) += g;
        }
  return grad_in_;
}

std::unique_ptr<Layer> AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(window_);
}

}  // namespace groupfel::nn
