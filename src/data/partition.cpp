#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace groupfel::data {

std::vector<ClientShard> dirichlet_partition(
    std::shared_ptr<const DataSet> dataset, const PartitionSpec& spec,
    runtime::Rng& rng) {
  if (!dataset) throw std::invalid_argument("dirichlet_partition: null dataset");
  if (spec.num_clients == 0)
    throw std::invalid_argument("dirichlet_partition: zero clients");
  if (spec.size_min == 0 || spec.size_min > spec.size_max)
    throw std::invalid_argument("dirichlet_partition: bad size bounds");

  const std::size_t m = dataset->num_classes();
  auto pools = dataset->label_pools();
  // Shuffle each pool once so sequential pops are random draws.
  for (std::size_t c = 0; c < m; ++c) {
    auto pool_rng = rng.fork(0x706f6f6cull + c);
    pool_rng.shuffle(pools[c]);
  }
  std::size_t remaining_total = dataset->size();

  // Draw all client sizes first so we can validate feasibility up front.
  std::vector<std::size_t> sizes(spec.num_clients);
  std::size_t total_requested = 0;
  for (std::size_t i = 0; i < spec.num_clients; ++i) {
    const double draw = rng.normal(spec.size_mean, spec.size_std);
    const auto clamped = std::clamp(
        static_cast<long long>(std::llround(draw)),
        static_cast<long long>(spec.size_min),
        static_cast<long long>(spec.size_max));
    sizes[i] = static_cast<std::size_t>(clamped);
    total_requested += sizes[i];
  }
  if (total_requested > dataset->size())
    throw std::invalid_argument(
        "dirichlet_partition: dataset too small (" +
        std::to_string(dataset->size()) + " samples for " +
        std::to_string(total_requested) + " requested)");

  std::vector<ClientShard> shards;
  shards.reserve(spec.num_clients);
  for (std::size_t i = 0; i < spec.num_clients; ++i) {
    const std::vector<double> props = rng.dirichlet(spec.alpha, m);
    std::vector<std::size_t> indices;
    indices.reserve(sizes[i]);
    for (std::size_t s = 0; s < sizes[i]; ++s) {
      // Weight labels by Dirichlet proportion, masked by pool availability.
      std::vector<double> weights(m);
      bool any = false;
      for (std::size_t c = 0; c < m; ++c) {
        weights[c] = pools[c].empty() ? 0.0 : props[c];
        any = any || weights[c] > 0.0;
      }
      if (!any) {
        // Requested labels exhausted: fall back to whatever remains so the
        // client still reaches its drawn size.
        for (std::size_t c = 0; c < m; ++c)
          weights[c] = static_cast<double>(pools[c].size());
      }
      const std::size_t c = rng.categorical(weights);
      indices.push_back(pools[c].back());
      pools[c].pop_back();
      --remaining_total;
    }
    shards.emplace_back(dataset, std::move(indices));
  }
  (void)remaining_total;
  return shards;
}

std::vector<std::vector<std::size_t>> assign_to_edges(std::size_t num_clients,
                                                      std::size_t num_edges) {
  if (num_edges == 0) throw std::invalid_argument("assign_to_edges: 0 edges");
  std::vector<std::vector<std::size_t>> edges(num_edges);
  const std::size_t base = num_clients / num_edges;
  const std::size_t extra = num_clients % num_edges;
  std::size_t next = 0;
  for (std::size_t e = 0; e < num_edges; ++e) {
    const std::size_t count = base + (e < extra ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) edges[e].push_back(next++);
  }
  return edges;
}

}  // namespace groupfel::data
