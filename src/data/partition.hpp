// Non-IID client partitioning following the paper's protocol (§7.2):
// each client's per-label proportions are drawn from Dirichlet(alpha)
// (Hsu et al. [36]) and its sample count from a clamped normal
// distribution (20..200 in the paper's CIFAR setup).
#pragma once

#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "runtime/rng.hpp"

namespace groupfel::data {

struct PartitionSpec {
  std::size_t num_clients = 300;
  double alpha = 0.5;        ///< Dirichlet concentration; smaller = more skew
  double size_mean = 110.0;  ///< client sample count ~ N(mean, std)
  double size_std = 45.0;
  std::size_t size_min = 20;
  std::size_t size_max = 200;
};

/// Splits `dataset` into per-client shards. Sampling is without replacement
/// from per-label pools; when a requested label pool is exhausted the draw
/// falls back to the remaining pools (proportional to remaining size), so
/// every produced index is unique and the partition is always feasible as
/// long as the dataset has enough samples in total. Throws otherwise.
[[nodiscard]] std::vector<ClientShard> dirichlet_partition(
    std::shared_ptr<const DataSet> dataset, const PartitionSpec& spec,
    runtime::Rng& rng);

/// Assigns clients to edge servers contiguously (paper: 3 edges x 100
/// clients). Returns per-edge client-index lists.
[[nodiscard]] std::vector<std::vector<std::size_t>> assign_to_edges(
    std::size_t num_clients, std::size_t num_edges);

}  // namespace groupfel::data
