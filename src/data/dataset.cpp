#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace groupfel::data {

DataSet::DataSet(nn::Tensor features, std::vector<std::int32_t> labels,
                 std::size_t num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      classes_(num_classes) {
  if (features_.rank() < 2)
    throw std::invalid_argument("DataSet: features must be [N, ...]");
  if (features_.dim(0) != labels_.size())
    throw std::invalid_argument("DataSet: feature/label count mismatch");
  for (auto l : labels_)
    if (l < 0 || static_cast<std::size_t>(l) >= classes_)
      throw std::invalid_argument("DataSet: label out of range");
}

std::size_t DataSet::sample_size() const noexcept {
  return labels_.empty() ? 0 : features_.size() / labels_.size();
}

std::vector<std::size_t> DataSet::sample_shape() const {
  return {features_.shape().begin() + 1, features_.shape().end()};
}

void prepare_batch(std::span<const std::size_t> sample_shape, std::size_t n,
                   DataSet::Batch& out) {
  const auto& oshape = out.features.shape();
  const bool tail_matches =
      oshape.size() == sample_shape.size() + 1 &&
      std::equal(oshape.begin() + 1, oshape.end(), sample_shape.begin());
  if (tail_matches) {
    // Common case — out already holds a batch of this sample shape; only the
    // leading dimension moves, so no reshape bookkeeping.
    out.features.resize_leading(n);
  } else {
    std::vector<std::size_t> shape;
    shape.reserve(sample_shape.size() + 1);
    shape.push_back(n);
    shape.insert(shape.end(), sample_shape.begin(), sample_shape.end());
    out.features.resize(shape);
  }
  out.labels.resize(n);
}

namespace {

/// prepare_batch keyed off a resident feature tensor's [N, ...] shape.
void prepare_batch_like(const nn::Tensor& features_like, std::size_t n,
                        DataSet::Batch& out) {
  const auto& fshape = features_like.shape();
  prepare_batch({fshape.data() + 1, fshape.size() - 1}, n, out);
}

}  // namespace

DataSet::Batch DataSet::gather(std::span<const std::size_t> indices) const {
  Batch batch;
  gather_into(indices, batch);
  return batch;
}

void DataSet::gather_into(std::span<const std::size_t> indices,
                          Batch& out) const {
  const std::size_t stride = sample_size();
  prepare_batch_like(features_, indices.size(), out);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size())
      throw std::out_of_range("DataSet::gather_into: bad index");
    std::copy_n(features_.raw() + src * stride, stride,
                out.features.raw() + i * stride);
    out.labels[i] = labels_[src];
  }
}

std::vector<std::vector<std::size_t>> DataSet::label_pools() const {
  std::vector<std::vector<std::size_t>> pools(classes_);
  for (std::size_t i = 0; i < labels_.size(); ++i)
    pools[static_cast<std::size_t>(labels_[i])].push_back(i);
  return pools;
}

ClientShard::ClientShard(std::shared_ptr<const DataSet> dataset,
                         std::vector<std::size_t> indices)
    : dataset_(std::move(dataset)), indices_(std::move(indices)) {
  if (!dataset_) throw std::invalid_argument("ClientShard: null dataset");
  for (auto i : indices_)
    if (i >= dataset_->size())
      throw std::invalid_argument("ClientShard: index out of range");
}

std::vector<std::size_t> ClientShard::label_counts() const {
  std::vector<std::size_t> counts(dataset_->num_classes(), 0);
  for (auto i : indices_)
    ++counts[static_cast<std::size_t>(dataset_->label(i))];
  return counts;
}

DataSet::Batch ClientShard::batch(
    std::span<const std::size_t> local_positions) const {
  DataSet::Batch out;
  batch_into(local_positions, out);
  return out;
}

void ClientShard::batch_into(std::span<const std::size_t> local_positions,
                             DataSet::Batch& out) const {
  const DataSet& ds = *dataset_;
  const std::size_t stride = ds.sample_size();
  prepare_batch_like(ds.features(), local_positions.size(), out);
  const auto labels = ds.labels();
  for (std::size_t i = 0; i < local_positions.size(); ++i) {
    const std::size_t src = indices_.at(local_positions[i]);
    std::copy_n(ds.features().raw() + src * stride, stride,
                out.features.raw() + i * stride);
    out.labels[i] = labels[src];
  }
}

}  // namespace groupfel::data
