#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace groupfel::data {

DataSet::DataSet(nn::Tensor features, std::vector<std::int32_t> labels,
                 std::size_t num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      classes_(num_classes) {
  if (features_.rank() < 2)
    throw std::invalid_argument("DataSet: features must be [N, ...]");
  if (features_.dim(0) != labels_.size())
    throw std::invalid_argument("DataSet: feature/label count mismatch");
  for (auto l : labels_)
    if (l < 0 || static_cast<std::size_t>(l) >= classes_)
      throw std::invalid_argument("DataSet: label out of range");
}

std::size_t DataSet::sample_size() const noexcept {
  return labels_.empty() ? 0 : features_.size() / labels_.size();
}

std::vector<std::size_t> DataSet::sample_shape() const {
  return {features_.shape().begin() + 1, features_.shape().end()};
}

DataSet::Batch DataSet::gather(std::span<const std::size_t> indices) const {
  const std::size_t stride = sample_size();
  std::vector<std::size_t> shape = features_.shape();
  shape[0] = indices.size();
  Batch batch{nn::Tensor(shape), std::vector<std::int32_t>(indices.size())};
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size()) throw std::out_of_range("DataSet::gather: bad index");
    std::copy_n(features_.raw() + src * stride, stride,
                batch.features.raw() + i * stride);
    batch.labels[i] = labels_[src];
  }
  return batch;
}

std::vector<std::vector<std::size_t>> DataSet::label_pools() const {
  std::vector<std::vector<std::size_t>> pools(classes_);
  for (std::size_t i = 0; i < labels_.size(); ++i)
    pools[static_cast<std::size_t>(labels_[i])].push_back(i);
  return pools;
}

ClientShard::ClientShard(std::shared_ptr<const DataSet> dataset,
                         std::vector<std::size_t> indices)
    : dataset_(std::move(dataset)), indices_(std::move(indices)) {
  if (!dataset_) throw std::invalid_argument("ClientShard: null dataset");
  for (auto i : indices_)
    if (i >= dataset_->size())
      throw std::invalid_argument("ClientShard: index out of range");
}

std::vector<std::size_t> ClientShard::label_counts() const {
  std::vector<std::size_t> counts(dataset_->num_classes(), 0);
  for (auto i : indices_)
    ++counts[static_cast<std::size_t>(dataset_->label(i))];
  return counts;
}

DataSet::Batch ClientShard::batch(
    std::span<const std::size_t> local_positions) const {
  std::vector<std::size_t> global;
  global.reserve(local_positions.size());
  for (auto p : local_positions) global.push_back(indices_.at(p));
  return dataset_->gather(global);
}

}  // namespace groupfel::data
