#include "data/lazy_shard.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/check.hpp"

namespace groupfel::data {

LazyShardSource::LazyShardSource(SyntheticSpec spec, ClientPopulation population)
    : spec_(std::move(spec)),
      population_(std::move(population)),
      prototypes_(make_prototypes(spec_)),
      dim_(nn::shape_size(spec_.sample_shape)) {
  if (population_.num_classes() != spec_.num_classes)
    throw std::invalid_argument(
        "LazyShardSource: population/spec class count mismatch");
}

void LazyShardSource::batch_into(std::size_t c,
                                 std::span<const std::size_t> local_positions,
                                 DataSet::Batch& out) const {
  const std::size_t n_c = population_.data_count(c);
  const std::uint64_t client_seed = population_.seed(c);
  prepare_batch(spec_.sample_shape, local_positions.size(), out);
  for (std::size_t i = 0; i < local_positions.size(); ++i) {
    const std::size_t pos = local_positions[i];
    if (pos >= n_c)
      throw std::out_of_range("LazyShardSource::batch_into: bad position");
    const std::size_t cls = population_.intended_class(c, pos);
    const std::uint64_t seed = sample_stream_seed(client_seed, pos);
    out.labels[i] = synthesize_sample(spec_, prototypes_, seed, cls,
                                      out.features.raw() + i * dim_);
  }
}

DataSet::Batch LazyShardSource::materialize_client(std::size_t c) const {
  DataSet::Batch out;
  const std::size_t n_c = population_.data_count(c);
  prepare_batch(spec_.sample_shape, n_c, out);
  // Walk the histogram instead of prefix-scanning per sample: the canonical
  // layout orders samples by ascending intended class.
  const auto row = population_.label_counts(c);
  const std::uint64_t client_seed = population_.seed(c);
  std::size_t pos = 0;
  for (std::size_t cls = 0; cls < row.size(); ++cls) {
    for (std::uint32_t k = 0; k < row[cls]; ++k, ++pos) {
      const std::uint64_t seed = sample_stream_seed(client_seed, pos);
      out.labels[pos] = synthesize_sample(spec_, prototypes_, seed, cls,
                                          out.features.raw() + pos * dim_);
    }
  }
  GF_CHECK_EQ(pos, n_c, "materialize_client: histogram/size mismatch");
  return out;
}

MaterializedPopulation materialize_population(const LazyShardSource& source) {
  const ClientPopulation& pop = source.population();
  const std::size_t total = pop.total_samples();
  const std::size_t dim = source.sample_size();

  std::vector<std::size_t> shape;
  shape.push_back(total);
  shape.insert(shape.end(), source.sample_shape().begin(),
               source.sample_shape().end());
  nn::Tensor features(shape);
  std::vector<std::int32_t> labels(total);

  std::vector<std::size_t> offsets(pop.num_clients() + 1, 0);
  DataSet::Batch scratch;
  std::size_t cursor = 0;
  for (std::size_t c = 0; c < pop.num_clients(); ++c) {
    offsets[c] = cursor;
    scratch = source.materialize_client(c);
    std::copy_n(scratch.features.raw(), scratch.labels.size() * dim,
                features.raw() + cursor * dim);
    std::copy_n(scratch.labels.data(), scratch.labels.size(),
                labels.begin() + static_cast<std::ptrdiff_t>(cursor));
    cursor += scratch.labels.size();
  }
  offsets[pop.num_clients()] = cursor;
  GF_CHECK_EQ(cursor, total, "materialize_population: sample count drift");

  MaterializedPopulation out;
  out.dataset = std::make_shared<const DataSet>(
      std::move(features), std::move(labels), source.num_classes());
  out.shards.reserve(pop.num_clients());
  for (std::size_t c = 0; c < pop.num_clients(); ++c) {
    std::vector<std::size_t> indices(offsets[c + 1] - offsets[c]);
    std::iota(indices.begin(), indices.end(), offsets[c]);
    out.shards.emplace_back(out.dataset, std::move(indices));
  }
  return out;
}

}  // namespace groupfel::data
