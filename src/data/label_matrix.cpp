#include "data/label_matrix.hpp"

#include <numeric>
#include <stdexcept>

namespace groupfel::data {

LabelMatrix::LabelMatrix(std::vector<std::vector<std::size_t>> rows,
                         std::size_t num_labels)
    : labels_(num_labels) {
  flat_.reserve(rows.size() * num_labels);
  for (const auto& r : rows) {
    if (r.size() != labels_)
      throw std::invalid_argument("LabelMatrix: ragged rows");
    flat_.insert(flat_.end(), r.begin(), r.end());
  }
}

LabelMatrix LabelMatrix::from_flat(std::vector<std::size_t> flat,
                                   std::size_t num_labels) {
  if (num_labels == 0 ? !flat.empty() : flat.size() % num_labels != 0)
    throw std::invalid_argument("LabelMatrix: flat size not row-divisible");
  LabelMatrix m;
  m.flat_ = std::move(flat);
  m.labels_ = num_labels;
  return m;
}

LabelMatrix LabelMatrix::from_shards(std::span<const ClientShard> shards) {
  if (shards.empty()) return {};
  const std::size_t m = shards[0].dataset().num_classes();
  std::vector<std::size_t> flat;
  flat.reserve(shards.size() * m);
  for (const auto& shard : shards) {
    const std::vector<std::size_t> counts = shard.label_counts();
    flat.insert(flat.end(), counts.begin(), counts.end());
  }
  return from_flat(std::move(flat), m);
}

LabelMatrix LabelMatrix::from_population(const ClientPopulation& population,
                                         runtime::ThreadPool* pool) {
  const std::size_t m = population.num_classes();
  const std::size_t n = population.num_clients();
  std::vector<std::size_t> flat(n * m);
  // Parallel blocks of whole rows: every row is written exactly once by
  // exactly one block, so the decomposition cannot affect the result.
  constexpr std::size_t kRowBlock = 4096;
  const std::size_t blocks = (n + kRowBlock - 1) / kRowBlock;
  const auto copy_block = [&](std::size_t bi) {
    const std::size_t c0 = bi * kRowBlock;
    const std::size_t c1 = std::min(n, c0 + kRowBlock);
    for (std::size_t c = c0; c < c1; ++c) {
      const auto row = population.label_counts(c);
      for (std::size_t j = 0; j < m; ++j) flat[c * m + j] = row[j];
    }
  };
  if (pool != nullptr && pool->size() > 1 && blocks > 1) {
    pool->parallel_for(blocks, copy_block);
  } else {
    for (std::size_t bi = 0; bi < blocks; ++bi) copy_block(bi);
  }
  return from_flat(std::move(flat), m);
}

std::span<const std::size_t> LabelMatrix::row(std::size_t client) const {
  if (client >= num_clients())
    throw std::out_of_range("LabelMatrix::row: bad client");
  return {flat_.data() + client * labels_, labels_};
}

std::size_t LabelMatrix::client_total(std::size_t client) const {
  const auto r = row(client);
  return std::accumulate(r.begin(), r.end(), std::size_t{0});
}

std::vector<std::size_t> LabelMatrix::global_counts() const {
  std::vector<std::size_t> sums(labels_, 0);
  const std::size_t n = num_clients();
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = row(i);
    for (std::size_t j = 0; j < labels_; ++j) sums[j] += r[j];
  }
  return sums;
}

LabelMatrix LabelMatrix::submatrix(
    std::span<const std::size_t> clients) const {
  std::vector<std::size_t> flat;
  flat.reserve(clients.size() * labels_);
  for (auto c : clients) {
    const auto r = row(c);
    flat.insert(flat.end(), r.begin(), r.end());
  }
  return from_flat(std::move(flat), labels_);
}

}  // namespace groupfel::data
