#include "data/label_matrix.hpp"

#include <numeric>
#include <stdexcept>

namespace groupfel::data {

LabelMatrix::LabelMatrix(std::vector<std::vector<std::size_t>> rows,
                         std::size_t num_labels)
    : rows_(std::move(rows)), labels_(num_labels) {
  for (const auto& r : rows_)
    if (r.size() != labels_)
      throw std::invalid_argument("LabelMatrix: ragged rows");
}

LabelMatrix LabelMatrix::from_shards(std::span<const ClientShard> shards) {
  if (shards.empty()) return {};
  std::vector<std::vector<std::size_t>> rows;
  rows.reserve(shards.size());
  const std::size_t m = shards[0].dataset().num_classes();
  for (const auto& shard : shards) rows.push_back(shard.label_counts());
  return LabelMatrix(std::move(rows), m);
}

std::size_t LabelMatrix::client_total(std::size_t client) const {
  const auto& r = rows_.at(client);
  return std::accumulate(r.begin(), r.end(), std::size_t{0});
}

std::vector<std::size_t> LabelMatrix::global_counts() const {
  std::vector<std::size_t> sums(labels_, 0);
  for (const auto& r : rows_)
    for (std::size_t j = 0; j < labels_; ++j) sums[j] += r[j];
  return sums;
}

LabelMatrix LabelMatrix::submatrix(
    std::span<const std::size_t> clients) const {
  std::vector<std::vector<std::size_t>> rows;
  rows.reserve(clients.size());
  for (auto c : clients) rows.push_back(rows_.at(c));
  return LabelMatrix(std::move(rows), labels_);
}

}  // namespace groupfel::data
