#include "data/client_data.hpp"

#include <unordered_set>

namespace groupfel::data {

ClientDataStore ClientDataStore::resident(std::vector<ClientShard> shards) {
  ClientDataStore store;
  store.shards_ = std::move(shards);
  return store;
}

ClientDataStore ClientDataStore::resident(std::vector<ClientShard> shards,
                                          ClientPopulation population) {
  ClientDataStore store;
  store.shards_ = std::move(shards);
  store.population_.emplace(std::move(population));
  return store;
}

ClientDataStore ClientDataStore::lazy(
    std::shared_ptr<const LazyShardSource> source) {
  ClientDataStore store;
  store.lazy_ = std::move(source);
  return store;
}

const ClientPopulation* ClientDataStore::population() const noexcept {
  if (lazy_) return &lazy_->population();
  return population_ ? &*population_ : nullptr;
}

LabelMatrix ClientDataStore::label_matrix(runtime::ThreadPool* pool) const {
  if (const ClientPopulation* pop = population())
    return LabelMatrix::from_population(*pop, pool);
  return LabelMatrix::from_shards(shards_);
}

std::size_t ClientDataStore::resident_bytes() const {
  std::size_t bytes = 0;
  if (lazy_) {
    const ClientPopulation& pop = lazy_->population();
    bytes += pop.num_clients() * pop.bytes_per_client();
    bytes += lazy_->sample_size() * lazy_->num_classes() *
             lazy_->spec().modes_per_class * sizeof(float);  // prototypes
    return bytes;
  }
  // Shards share datasets; count each backing tensor once.
  std::unordered_set<const DataSet*> seen;
  for (const auto& shard : shards_) {
    bytes += shard.indices().size() * sizeof(std::size_t);
    const DataSet* ds = &shard.dataset();
    if (seen.insert(ds).second)
      bytes += ds->features().size() * sizeof(float) +
               ds->labels().size() * sizeof(std::int32_t);
  }
  if (population_)
    bytes += population_->num_clients() * population_->bytes_per_client();
  return bytes;
}

}  // namespace groupfel::data
