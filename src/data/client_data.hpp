// Client data access for the trainer, independent of residency.
//
// ClientDataRef is a non-owning view of ONE client's training data that
// dispatches (without virtual calls) to either a resident ClientShard or a
// LazyShardSource that synthesizes batches on demand. The local update
// rules (algorithms/) take ClientDataRef, so the same SGD loop trains a
// 64-client resident federation and a million-client lazy one.
//
// ClientDataStore is the federation-wide container behind
// FederationTopology: either a vector of resident shards (the legacy pool
// path and the descriptor-resident A/B arm) or a shared LazyShardSource
// (O(bytes) per client).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "data/client_descriptor.hpp"
#include "data/dataset.hpp"
#include "data/label_matrix.hpp"
#include "data/lazy_shard.hpp"

namespace groupfel::data {

class ClientDataRef {
 public:
  /// Implicit: existing call sites that hold a ClientShard keep working.
  ClientDataRef(const ClientShard& shard)  // NOLINT(runtime/explicit)
      : shard_(&shard) {}
  ClientDataRef(const LazyShardSource& source, std::size_t client)
      : lazy_(&source), client_(client) {}

  /// Local sample count n_c.
  [[nodiscard]] std::size_t size() const {
    return shard_ ? shard_->size() : lazy_->data_count(client_);
  }

  /// Materializes local positions into a caller-owned Batch (zero-alloc
  /// steady state; bit-identical across residency for descriptor-built
  /// federations).
  void batch_into(std::span<const std::size_t> local_positions,
                  DataSet::Batch& out) const {
    if (shard_)
      shard_->batch_into(local_positions, out);
    else
      lazy_->batch_into(client_, local_positions, out);
  }

  /// Allocating form (legacy reuse_batch_buffers=false path).
  [[nodiscard]] DataSet::Batch batch(
      std::span<const std::size_t> local_positions) const {
    DataSet::Batch out;
    batch_into(local_positions, out);
    return out;
  }

 private:
  const ClientShard* shard_ = nullptr;
  const LazyShardSource* lazy_ = nullptr;
  std::size_t client_ = 0;
};

class ClientDataStore {
 public:
  ClientDataStore() = default;

  /// Legacy pool path: resident shards carved from one shared dataset. The
  /// label matrix is computed from observed shard labels (byte-identical to
  /// the pre-descriptor behavior).
  [[nodiscard]] static ClientDataStore resident(
      std::vector<ClientShard> shards);

  /// Descriptor-resident A/B arm: resident shards materialized from a
  /// descriptor population. The label matrix comes from the population
  /// histograms (intended labels) so grouping matches the lazy arm exactly.
  [[nodiscard]] static ClientDataStore resident(
      std::vector<ClientShard> shards, ClientPopulation population);

  /// O(bytes)-per-client arm: batches synthesized on demand.
  [[nodiscard]] static ClientDataStore lazy(
      std::shared_ptr<const LazyShardSource> source);

  [[nodiscard]] std::size_t num_clients() const noexcept {
    return lazy_ ? lazy_->num_clients() : shards_.size();
  }
  [[nodiscard]] bool is_lazy() const noexcept { return lazy_ != nullptr; }

  /// View of one client's data, whatever the residency.
  [[nodiscard]] ClientDataRef client(std::size_t c) const {
    if (lazy_) return {*lazy_, c};
    return {shards_.at(c)};
  }

  /// n_c without materializing anything.
  [[nodiscard]] std::size_t data_count(std::size_t c) const {
    return lazy_ ? lazy_->data_count(c) : shards_.at(c).size();
  }

  /// Resident shards; empty in lazy mode (benches that inspect shard
  /// internals must check is_lazy()).
  [[nodiscard]] const std::vector<ClientShard>& shards() const noexcept {
    return shards_;
  }
  [[nodiscard]] const LazyShardSource* lazy_source() const noexcept {
    return lazy_.get();
  }
  /// Descriptor table when this store was built from one (either arm).
  [[nodiscard]] const ClientPopulation* population() const noexcept;

  /// The §5.1 label matrix L for grouping: population histograms when a
  /// descriptor table is present, observed shard labels otherwise. `pool`
  /// parallelizes the descriptor-table copy (bit-identical for any pool).
  [[nodiscard]] LabelMatrix label_matrix(
      runtime::ThreadPool* pool = nullptr) const;

  /// Approximate resident bytes held by this store's client data (feature
  /// tensors + index lists for resident shards; descriptor table when
  /// lazy). Reported by bench/scale_sim.
  [[nodiscard]] std::size_t resident_bytes() const;

 private:
  std::vector<ClientShard> shards_;
  std::shared_ptr<const LazyShardSource> lazy_;
  std::optional<ClientPopulation> population_;
};

}  // namespace groupfel::data
