#include "data/synthetic.hpp"

#include <stdexcept>

namespace groupfel::data {

SyntheticSpec cifar_like_spec(bool image) {
  SyntheticSpec spec;
  spec.num_classes = 10;
  spec.sample_shape = image ? std::vector<std::size_t>{3, 16, 16}
                            : std::vector<std::size_t>{32};
  spec.prototype_scale = 1.0;
  // Three prototype modes per class with strong overlap: class-incomplete
  // local training is destructive (the non-IID mechanism of real CIFAR),
  // and the accuracy ceiling lands near the paper's ~0.6-0.7 range.
  spec.modes_per_class = 3;
  spec.noise_scale = 1.4;
  spec.label_noise = 0.08;
  return spec;
}

SyntheticSpec sc_like_spec(bool image) {
  SyntheticSpec spec;
  spec.num_classes = 35;
  spec.sample_shape = image ? std::vector<std::size_t>{1, 32, 16}
                            : std::vector<std::size_t>{40};
  spec.prototype_scale = 1.0;
  spec.modes_per_class = 2;
  spec.noise_scale = 1.8;   // 35-way with strong overlap: low-accuracy regime
  spec.label_noise = 0.15;  // paper's SC curves top out near 0.4
  return spec;
}

std::vector<float> make_prototypes(const SyntheticSpec& spec) {
  if (spec.num_classes == 0)
    throw std::invalid_argument("make_prototypes: zero classes");
  if (spec.modes_per_class == 0)
    throw std::invalid_argument("make_prototypes: zero modes per class");
  const std::size_t dim = nn::shape_size(spec.sample_shape);
  if (dim == 0) throw std::invalid_argument("make_prototypes: empty shape");
  // Class prototypes come from the spec's own seed so every dataset drawn
  // from the same spec (train, test, extra pools) shares one class geometry.
  runtime::Rng proto_rng(spec.prototype_seed);
  std::vector<float> prototypes(spec.num_classes * spec.modes_per_class * dim);
  for (auto& v : prototypes)
    v = static_cast<float>(proto_rng.normal() * spec.prototype_scale);
  return prototypes;
}

std::uint64_t sample_stream_seed(std::uint64_t client_seed,
                                 std::uint64_t local_index) noexcept {
  std::uint64_t sm = client_seed ^ (local_index * 0x9e3779b97f4a7c15ull);
  return runtime::splitmix64(sm);
}

std::int32_t synthesize_sample(const SyntheticSpec& spec,
                               std::span<const float> prototypes,
                               std::uint64_t seed, std::size_t cls,
                               float* out) {
  const std::size_t dim = nn::shape_size(spec.sample_shape);
  runtime::Rng rng(seed);
  // Same draw order as make_synthetic: mode, features, label reroll.
  const std::size_t modes = spec.modes_per_class;
  const std::size_t mode = modes > 1 ? rng.next_below(modes) : 0;
  const float* proto = prototypes.data() + (cls * modes + mode) * dim;
  for (std::size_t d = 0; d < dim; ++d)
    out[d] = proto[d] + static_cast<float>(rng.normal() * spec.noise_scale);
  std::int32_t label = static_cast<std::int32_t>(cls);
  if (spec.label_noise > 0.0 && rng.next_double() < spec.label_noise)
    label = static_cast<std::int32_t>(rng.next_below(spec.num_classes));
  return label;
}

DataSet make_synthetic(const SyntheticSpec& spec, std::size_t n,
                       runtime::Rng& rng) {
  const std::vector<float> prototypes = make_prototypes(spec);
  const std::size_t dim = nn::shape_size(spec.sample_shape);
  const std::size_t modes = spec.modes_per_class;

  std::vector<std::size_t> shape;
  shape.push_back(n);
  shape.insert(shape.end(), spec.sample_shape.begin(), spec.sample_shape.end());
  nn::Tensor features(shape);
  std::vector<std::int32_t> labels(n);

  for (std::size_t i = 0; i < n; ++i) {
    // Round-robin over classes keeps the global distribution balanced.
    const std::size_t cls = i % spec.num_classes;
    const std::size_t mode = modes > 1 ? rng.next_below(modes) : 0;
    const float* proto = prototypes.data() + (cls * modes + mode) * dim;
    float* out = features.raw() + i * dim;
    for (std::size_t d = 0; d < dim; ++d)
      out[d] = proto[d] + static_cast<float>(rng.normal() * spec.noise_scale);
    std::int32_t label = static_cast<std::int32_t>(cls);
    if (spec.label_noise > 0.0 && rng.next_double() < spec.label_noise)
      label = static_cast<std::int32_t>(rng.next_below(spec.num_classes));
    labels[i] = label;
  }
  return DataSet(std::move(features), std::move(labels), spec.num_classes);
}

}  // namespace groupfel::data
