// Lazy shard materialization: synthesize a client's minibatches on demand.
//
// A LazyShardSource pairs a ClientPopulation descriptor table with the
// synthetic-data spec (and its precomputed class prototypes). A client's
// sample j is fully determined by (spec, client seed, j): the intended class
// comes from the descriptor histogram under the canonical by-label layout,
// and the features/observed label come from an independent per-sample RNG
// stream (data/synthetic.hpp). Nothing is cached — a minibatch costs
// O(batch * sample_dim) compute and writes into the caller-owned Batch
// buffers from the PR-4 zero-alloc pipeline, so the resident footprint of a
// million-client federation is the descriptor table alone.
//
// Bit-identity contract: materialize_population() builds resident
// ClientShards by running the SAME per-sample generators in the same order,
// so the lazy and resident paths produce byte-identical batches (ctest-gated
// by tests/lazy_shard_test.cpp and bench/scale_sim --smoke).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "data/client_descriptor.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"

namespace groupfel::data {

class LazyShardSource {
 public:
  LazyShardSource() = default;
  LazyShardSource(SyntheticSpec spec, ClientPopulation population);

  [[nodiscard]] const SyntheticSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const ClientPopulation& population() const noexcept {
    return population_;
  }

  [[nodiscard]] std::size_t num_clients() const noexcept {
    return population_.num_clients();
  }
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return spec_.num_classes;
  }
  /// n_c: local sample count of client `c`.
  [[nodiscard]] std::size_t data_count(std::size_t c) const {
    return population_.data_count(c);
  }
  [[nodiscard]] std::size_t sample_size() const noexcept { return dim_; }
  [[nodiscard]] std::span<const std::size_t> sample_shape() const noexcept {
    return spec_.sample_shape;
  }

  /// Synthesizes client `c`'s samples at `local_positions` into a
  /// caller-owned Batch (same storage-reuse contract as
  /// ClientShard::batch_into). Thread-safe: const, no mutable state, every
  /// sample has its own RNG stream.
  void batch_into(std::size_t c, std::span<const std::size_t> local_positions,
                  DataSet::Batch& out) const;

  /// All of client `c`'s samples, in canonical local order.
  [[nodiscard]] DataSet::Batch materialize_client(std::size_t c) const;

 private:
  SyntheticSpec spec_;
  ClientPopulation population_;
  std::vector<float> prototypes_;
  std::size_t dim_ = 0;
};

/// A fully resident federation: one shared DataSet holding every client's
/// samples plus per-client contiguous-range shards.
struct MaterializedPopulation {
  std::shared_ptr<const DataSet> dataset;
  std::vector<ClientShard> shards;
};

/// Materializes the whole population through the same per-sample generators
/// the lazy path uses — the resident half of the lazy-vs-resident A/B
/// toggle. Memory: O(total samples * sample_dim); use only at small scale.
[[nodiscard]] MaterializedPopulation materialize_population(
    const LazyShardSource& source);

}  // namespace groupfel::data
