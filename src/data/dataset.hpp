// Dataset containers for federated simulation.
//
// A DataSet owns one dense feature tensor plus integer labels. Clients hold
// ClientShard views (shared dataset + an index list) so partitioning 300
// clients does not copy sample data.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/tensor.hpp"

namespace groupfel::data {

class DataSet {
 public:
  DataSet() = default;

  /// features: [N, ...]; labels: N entries in [0, num_classes).
  DataSet(nn::Tensor features, std::vector<std::int32_t> labels,
          std::size_t num_classes);

  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_; }
  [[nodiscard]] const nn::Tensor& features() const noexcept { return features_; }
  [[nodiscard]] std::span<const std::int32_t> labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] std::int32_t label(std::size_t i) const { return labels_.at(i); }

  /// Per-sample feature size (product of non-batch dims).
  [[nodiscard]] std::size_t sample_size() const noexcept;

  /// Shape of one sample (without the batch dimension).
  [[nodiscard]] std::vector<std::size_t> sample_shape() const;

  /// Gathers the given sample indices into a contiguous batch tensor +
  /// label vector.
  struct Batch {
    nn::Tensor features;
    std::vector<std::int32_t> labels;
  };
  [[nodiscard]] Batch gather(std::span<const std::size_t> indices) const;

  /// Allocation-free form of gather(): writes into a caller-owned Batch,
  /// reusing its storage (capacity grows once, then steady-state calls
  /// perform zero tensor constructions). Produces bit-identical contents
  /// to gather().
  void gather_into(std::span<const std::size_t> indices, Batch& out) const;

  /// Indices of all samples with each label: pools[label] -> sample indices.
  [[nodiscard]] std::vector<std::vector<std::size_t>> label_pools() const;

 private:
  nn::Tensor features_;
  std::vector<std::int32_t> labels_;
  std::size_t classes_ = 0;
};

/// Shapes `out`'s feature tensor as [n, sample_shape...] and its label
/// vector as n entries, reusing out's storage (the zero-alloc batch
/// contract from DataSet::gather_into, available to batch producers that
/// synthesize samples instead of copying them from a resident tensor).
void prepare_batch(std::span<const std::size_t> sample_shape, std::size_t n,
                   DataSet::Batch& out);

/// A client's view of a shared dataset.
class ClientShard {
 public:
  ClientShard() = default;
  ClientShard(std::shared_ptr<const DataSet> dataset,
              std::vector<std::size_t> indices);

  [[nodiscard]] std::size_t size() const noexcept { return indices_.size(); }
  [[nodiscard]] const DataSet& dataset() const { return *dataset_; }
  [[nodiscard]] std::span<const std::size_t> indices() const noexcept {
    return indices_;
  }

  /// Count of samples per label on this client (the label-matrix row L_i).
  [[nodiscard]] std::vector<std::size_t> label_counts() const;

  /// Materializes a minibatch from local positions [begin, end).
  [[nodiscard]] DataSet::Batch batch(std::span<const std::size_t> local_positions) const;

  /// Allocation-free form of batch(): maps local positions to global
  /// indices inline (no scratch index vector) and writes into a
  /// caller-owned Batch. Bit-identical contents to batch().
  void batch_into(std::span<const std::size_t> local_positions,
                  DataSet::Batch& out) const;

 private:
  std::shared_ptr<const DataSet> dataset_;
  std::vector<std::size_t> indices_;
};

}  // namespace groupfel::data
