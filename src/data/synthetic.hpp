// Synthetic dataset generators (DESIGN.md substitution for CIFAR-10 and
// SpeechCommands, which are not available offline).
//
// Each class is a Gaussian prototype in feature space; samples are prototype
// plus isotropic noise, with optional label noise to cap achievable accuracy
// at a paper-like level (~0.6 on the CIFAR task). The phenomena under study
// (non-IID skew across clients, grouping and sampling effects) live entirely
// in the label *partition*, which is identical to the paper's Dirichlet
// protocol — see data/partition.hpp.
#pragma once

#include <cstdint>
#include <span>

#include "data/dataset.hpp"
#include "runtime/rng.hpp"

namespace groupfel::data {

struct SyntheticSpec {
  std::size_t num_classes = 10;
  /// Per-sample feature shape (e.g. {3, 16, 16} for images, {40} for
  /// embedded/MFCC-style features).
  std::vector<std::size_t> sample_shape{32};
  double prototype_scale = 1.0;  ///< spread of class centers
  double noise_scale = 1.0;      ///< within-class spread
  double label_noise = 0.0;      ///< probability a label is re-rolled
  /// Prototype modes per class. With > 1 each class is a Gaussian MIXTURE:
  /// a classifier must see samples from every mode to place the boundary,
  /// so skewed local shards are genuinely destructive (as with real
  /// image/audio classes) rather than merely less informative.
  std::size_t modes_per_class = 1;
  /// Seed for the class prototypes. Part of the spec (not the per-dataset
  /// RNG) so train and test sets generated from the same spec share the
  /// same class geometry.
  std::uint64_t prototype_seed = 0xC1A55E5ull;
};

/// Draws `n` samples with uniform class frequencies (the paper assumes the
/// global distribution is balanced, §5.1).
[[nodiscard]] DataSet make_synthetic(const SyntheticSpec& spec, std::size_t n,
                                     runtime::Rng& rng);

/// Class-prototype table for a spec: [num_classes * modes_per_class * dim]
/// floats drawn from spec.prototype_seed. Every dataset or lazily
/// materialized sample generated from the same spec shares this geometry.
[[nodiscard]] std::vector<float> make_prototypes(const SyntheticSpec& spec);

/// Seed of the independent Rng stream for one sample, keyed by the owning
/// client's seed and the sample's local index. Counter-based (no shared
/// stream), so any sample can be regenerated in isolation, in any order, on
/// any thread, bit-identically.
[[nodiscard]] std::uint64_t sample_stream_seed(std::uint64_t client_seed,
                                               std::uint64_t local_index)
    noexcept;

/// Synthesizes ONE sample of intended class `cls` from its own stream:
/// mode draw, prototype + isotropic noise into `out` (dim floats), then the
/// label-noise reroll. Returns the observed label. Deterministic in
/// (spec, prototypes, seed, cls) — repeated calls are bit-identical, which
/// is the contract the lazy client-state path is built on.
std::int32_t synthesize_sample(const SyntheticSpec& spec,
                               std::span<const float> prototypes,
                               std::uint64_t seed, std::size_t cls,
                               float* out);

/// CIFAR-10-like: 10 classes. `image` selects {3, 16, 16} images for the
/// conv models; otherwise 32-dim embedded features for the MLP surrogate.
[[nodiscard]] SyntheticSpec cifar_like_spec(bool image = false);

/// SpeechCommands-like: 35 classes, 40-dim MFCC-style features (or
/// {1, 32, 16} spectrogram patches when `image`).
[[nodiscard]] SyntheticSpec sc_like_spec(bool image = false);

}  // namespace groupfel::data
