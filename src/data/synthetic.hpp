// Synthetic dataset generators (DESIGN.md substitution for CIFAR-10 and
// SpeechCommands, which are not available offline).
//
// Each class is a Gaussian prototype in feature space; samples are prototype
// plus isotropic noise, with optional label noise to cap achievable accuracy
// at a paper-like level (~0.6 on the CIFAR task). The phenomena under study
// (non-IID skew across clients, grouping and sampling effects) live entirely
// in the label *partition*, which is identical to the paper's Dirichlet
// protocol — see data/partition.hpp.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "runtime/rng.hpp"

namespace groupfel::data {

struct SyntheticSpec {
  std::size_t num_classes = 10;
  /// Per-sample feature shape (e.g. {3, 16, 16} for images, {40} for
  /// embedded/MFCC-style features).
  std::vector<std::size_t> sample_shape{32};
  double prototype_scale = 1.0;  ///< spread of class centers
  double noise_scale = 1.0;      ///< within-class spread
  double label_noise = 0.0;      ///< probability a label is re-rolled
  /// Prototype modes per class. With > 1 each class is a Gaussian MIXTURE:
  /// a classifier must see samples from every mode to place the boundary,
  /// so skewed local shards are genuinely destructive (as with real
  /// image/audio classes) rather than merely less informative.
  std::size_t modes_per_class = 1;
  /// Seed for the class prototypes. Part of the spec (not the per-dataset
  /// RNG) so train and test sets generated from the same spec share the
  /// same class geometry.
  std::uint64_t prototype_seed = 0xC1A55E5ull;
};

/// Draws `n` samples with uniform class frequencies (the paper assumes the
/// global distribution is balanced, §5.1).
[[nodiscard]] DataSet make_synthetic(const SyntheticSpec& spec, std::size_t n,
                                     runtime::Rng& rng);

/// CIFAR-10-like: 10 classes. `image` selects {3, 16, 16} images for the
/// conv models; otherwise 32-dim embedded features for the MLP surrogate.
[[nodiscard]] SyntheticSpec cifar_like_spec(bool image = false);

/// SpeechCommands-like: 35 classes, 40-dim MFCC-style features (or
/// {1, 32, 16} spectrogram patches when `image`).
[[nodiscard]] SyntheticSpec sc_like_spec(bool image = false);

}  // namespace groupfel::data
