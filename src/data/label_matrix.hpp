// The label matrix L from §5.1: L[i][j] = number of samples of label j on
// client i. Grouping algorithms operate exclusively on this matrix — the
// paper stresses that CoV needs "the data label distributions from users...
// without any information of their local data, model, nor gradient".
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace groupfel::data {

class LabelMatrix {
 public:
  LabelMatrix() = default;

  /// rows[i] is client i's per-label sample count.
  LabelMatrix(std::vector<std::vector<std::size_t>> rows,
              std::size_t num_labels);

  /// Builds the matrix from client shards.
  static LabelMatrix from_shards(std::span<const ClientShard> shards);

  [[nodiscard]] std::size_t num_clients() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_labels() const noexcept { return labels_; }

  [[nodiscard]] std::span<const std::size_t> row(std::size_t client) const {
    return rows_.at(client);
  }

  /// Total samples on a client.
  [[nodiscard]] std::size_t client_total(std::size_t client) const;

  /// Column sums: the global label distribution (unnormalized).
  [[nodiscard]] std::vector<std::size_t> global_counts() const;

  /// Sub-matrix restricted to the given clients (used per edge server).
  [[nodiscard]] LabelMatrix submatrix(std::span<const std::size_t> clients) const;

 private:
  std::vector<std::vector<std::size_t>> rows_;
  std::size_t labels_ = 0;
};

}  // namespace groupfel::data
