// The label matrix L from §5.1: L[i][j] = number of samples of label j on
// client i. Grouping algorithms operate exclusively on this matrix — the
// paper stresses that CoV needs "the data label distributions from users...
// without any information of their local data, model, nor gradient".
//
// Storage is one flat row-major array: a million-client matrix is a single
// allocation instead of a million row vectors (24 bytes + one heap block
// each), which is what lets fleet-scale grouping stream over L in cache
// order.
#pragma once

#include <span>
#include <vector>

#include "data/client_descriptor.hpp"
#include "data/dataset.hpp"

namespace groupfel::data {

class LabelMatrix {
 public:
  LabelMatrix() = default;

  /// rows[i] is client i's per-label sample count.
  LabelMatrix(std::vector<std::vector<std::size_t>> rows,
              std::size_t num_labels);

  /// Flat row-major counts: flat[i * num_labels + j] = L[i][j]. A named
  /// factory (not a constructor) so nested-brace row literals in the ctor
  /// above stay unambiguous.
  static LabelMatrix from_flat(std::vector<std::size_t> flat,
                               std::size_t num_labels);

  /// Builds the matrix from client shards (observed labels).
  static LabelMatrix from_shards(std::span<const ClientShard> shards);

  /// Builds the matrix from a descriptor table (intended labels) — no
  /// sample data needed, O(clients * labels) straight copy. `pool` copies
  /// row blocks in parallel; rows are disjoint, so the result is
  /// bit-identical for any pool size including nullptr (serial).
  static LabelMatrix from_population(const ClientPopulation& population,
                                     runtime::ThreadPool* pool = nullptr);

  [[nodiscard]] std::size_t num_clients() const noexcept {
    return labels_ == 0 ? 0 : flat_.size() / labels_;
  }
  [[nodiscard]] std::size_t num_labels() const noexcept { return labels_; }

  [[nodiscard]] std::span<const std::size_t> row(std::size_t client) const;

  /// Total samples on a client.
  [[nodiscard]] std::size_t client_total(std::size_t client) const;

  /// Column sums: the global label distribution (unnormalized).
  [[nodiscard]] std::vector<std::size_t> global_counts() const;

  /// Sub-matrix restricted to the given clients (used per edge server).
  [[nodiscard]] LabelMatrix submatrix(std::span<const std::size_t> clients) const;

 private:
  std::vector<std::size_t> flat_;  ///< [num_clients * num_labels], row-major
  std::size_t labels_ = 0;
};

}  // namespace groupfel::data
