// O(bytes)-per-client federation state for fleet-scale simulation.
//
// A ClientPopulation is a structure-of-arrays descriptor table: per client it
// stores only the label histogram, the data count, and an RNG seed — the
// state a real federation's coordinator would actually hold (the paper's
// grouping and sampling machinery needs exactly the label distributions,
// §5.1). Training data is NEVER resident here; batches are synthesized on
// demand from the deterministic per-sample generators (data/lazy_shard.hpp),
// so an ExperimentSpec scales to 10^6 clients at ~10^2 bytes each instead of
// holding 10^6 shards (the dict-of-resident-clients layout this replaces
// costs sample_dim * 4 bytes per sample, a ~1000x difference).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/partition.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"

namespace groupfel::data {

/// SoA descriptor table: one row of label counts, one size, and one seed per
/// client. Counts are 32-bit (a client holds at most size_max <= 2^32
/// samples); the flat layout avoids the per-client heap vector that makes a
/// million `std::vector` rows cost an extra allocation + 24 bytes each.
class ClientPopulation {
 public:
  using Count = std::uint32_t;

  ClientPopulation() = default;
  ClientPopulation(std::size_t num_clients, std::size_t num_classes);

  [[nodiscard]] std::size_t num_clients() const noexcept {
    return sizes_.size();
  }
  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_; }

  /// Client `c`'s label histogram (row L_c of the label matrix).
  [[nodiscard]] std::span<const Count> label_counts(std::size_t c) const {
    return {counts_.data() + c * classes_, classes_};
  }
  [[nodiscard]] std::span<Count> label_counts_mutable(std::size_t c) {
    return {counts_.data() + c * classes_, classes_};
  }

  /// n_c: total samples on client `c`.
  [[nodiscard]] std::size_t data_count(std::size_t c) const {
    return sizes_[c];
  }
  void set_data_count(std::size_t c, std::size_t n) {
    sizes_[c] = static_cast<std::uint32_t>(n);
  }

  /// Root of client `c`'s per-sample synthesis streams.
  [[nodiscard]] std::uint64_t seed(std::size_t c) const { return seeds_[c]; }
  void set_seed(std::size_t c, std::uint64_t s) { seeds_[c] = s; }

  /// Intended class of client `c`'s local sample `j` under the canonical
  /// layout: samples are ordered by ascending label, so positions
  /// [0, counts[0]) are class 0, the next counts[1] class 1, and so on.
  /// O(num_classes). Label noise may still reroll the OBSERVED label at
  /// synthesis time; this is the class the features are drawn from.
  [[nodiscard]] std::size_t intended_class(std::size_t c,
                                           std::size_t local_index) const;

  /// Sum of all clients' data counts.
  [[nodiscard]] std::size_t total_samples() const;

  /// Descriptor footprint per client (histogram + size + seed), in bytes.
  [[nodiscard]] std::size_t bytes_per_client() const noexcept {
    return classes_ * sizeof(Count) + sizeof(std::uint32_t) +
           sizeof(std::uint64_t);
  }

 private:
  std::size_t classes_ = 0;
  std::vector<Count> counts_;          ///< [num_clients * num_classes]
  std::vector<std::uint32_t> sizes_;   ///< n_c per client
  std::vector<std::uint64_t> seeds_;   ///< synthesis seed per client
};

/// Streaming Dirichlet partition into descriptors — the paper's §7.2
/// protocol (per-label proportions ~ Dirichlet(alpha), sample count ~
/// clamped normal) drawn client by client with O(num_classes) working state
/// and NO global sample pools. Each client's draws come from an independent
/// stream forked by client index, so the result is deterministic in `rng`
/// and identical regardless of evaluation order. Unlike the pool-based
/// dirichlet_partition, label counts are multinomial draws from the
/// client's own proportions (with replacement across clients): there is no
/// shared-pool exhaustion coupling, which is what lets a 10^6-client
/// partition run without materializing 10^8 sample indices.
///
/// `pool` shards the client loop over parallel blocks; the per-client
/// streams are forked by index from `rng` (fork is const — the parent never
/// advances), so the result is bit-identical for any pool size including
/// nullptr (serial).
[[nodiscard]] ClientPopulation descriptor_partition(
    const PartitionSpec& spec, std::size_t num_classes, runtime::Rng& rng,
    runtime::ThreadPool* pool = nullptr);

/// The per-client kernel of descriptor_partition over clients [begin, end):
/// exposed so callers can compose their own slab scheduling (e.g. progress
/// ticks between slabs in bench/scale_sim). Filling every slab of
/// [0, num_clients) reproduces descriptor_partition(spec, classes, rng)
/// bit for bit regardless of slab boundaries or execution order.
void descriptor_partition_range(ClientPopulation& pop,
                                const PartitionSpec& spec,
                                const runtime::Rng& rng, std::size_t begin,
                                std::size_t end,
                                runtime::ThreadPool* pool = nullptr);

}  // namespace groupfel::data
