#include "data/client_descriptor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace groupfel::data {

ClientPopulation::ClientPopulation(std::size_t num_clients,
                                   std::size_t num_classes)
    : classes_(num_classes),
      counts_(num_clients * num_classes, 0),
      sizes_(num_clients, 0),
      seeds_(num_clients, 0) {
  if (num_classes == 0)
    throw std::invalid_argument("ClientPopulation: zero classes");
}

std::size_t ClientPopulation::intended_class(std::size_t c,
                                             std::size_t local_index) const {
  const std::span<const Count> row = label_counts(c);
  std::size_t prefix = 0;
  for (std::size_t cls = 0; cls < classes_; ++cls) {
    prefix += row[cls];
    if (local_index < prefix) return cls;
  }
  throw std::out_of_range("ClientPopulation::intended_class: index " +
                          std::to_string(local_index) + " >= client size");
}

std::size_t ClientPopulation::total_samples() const {
  std::size_t total = 0;
  for (auto s : sizes_) total += s;
  return total;
}

namespace {

/// Clients-per-task granularity for the parallel partition. The block
/// decomposition has NO effect on the result (each client's draws come from
/// its own index-keyed stream and write only its own rows); it just keeps
/// task-dispatch overhead negligible next to ~size_mean categorical draws
/// per client.
constexpr std::size_t kPartitionBlock = 1024;

/// One client's draws: size, Dirichlet proportions, histogram fill, seed.
void partition_one(ClientPopulation& pop, const PartitionSpec& spec,
                   const runtime::Rng& rng, std::size_t i) {
  // One independent stream per client, keyed by index — the partition is
  // reproducible and is evaluated in any order (or in parallel).
  runtime::Rng crng = rng.fork(i);
  const double draw = crng.normal(spec.size_mean, spec.size_std);
  const auto clamped = std::clamp(
      static_cast<long long>(std::llround(draw)),
      static_cast<long long>(spec.size_min),
      static_cast<long long>(spec.size_max));
  const std::size_t size = static_cast<std::size_t>(clamped);
  pop.set_data_count(i, size);

  const std::vector<double> props =
      crng.dirichlet(spec.alpha, pop.num_classes());
  auto row = pop.label_counts_mutable(i);
  for (std::size_t s = 0; s < size; ++s) ++row[crng.categorical(props)];
  pop.set_seed(i, crng.next_u64());

  std::size_t row_total = 0;
  for (auto c : row) row_total += c;
  GF_CHECK_EQ(row_total, size, "descriptor_partition: client ", i,
              " histogram does not sum to its data count");
}

}  // namespace

void descriptor_partition_range(ClientPopulation& pop,
                                const PartitionSpec& spec,
                                const runtime::Rng& rng, std::size_t begin,
                                std::size_t end, runtime::ThreadPool* pool) {
  GF_CHECK(end <= pop.num_clients(),
           "descriptor_partition_range: end ", end, " beyond population ",
           pop.num_clients());
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t blocks = (count + kPartitionBlock - 1) / kPartitionBlock;
  const auto fill_block = [&](std::size_t bi) {
    const std::size_t i0 = begin + bi * kPartitionBlock;
    const std::size_t i1 = std::min(end, i0 + kPartitionBlock);
    for (std::size_t i = i0; i < i1; ++i) partition_one(pop, spec, rng, i);
  };
  if (pool != nullptr && pool->size() > 1 && blocks > 1) {
    pool->parallel_for(blocks, fill_block);
  } else {
    for (std::size_t bi = 0; bi < blocks; ++bi) fill_block(bi);
  }
}

ClientPopulation descriptor_partition(const PartitionSpec& spec,
                                      std::size_t num_classes,
                                      runtime::Rng& rng,
                                      runtime::ThreadPool* pool) {
  if (spec.num_clients == 0)
    throw std::invalid_argument("descriptor_partition: zero clients");
  if (spec.size_min == 0 || spec.size_min > spec.size_max)
    throw std::invalid_argument("descriptor_partition: bad size bounds");

  ClientPopulation pop(spec.num_clients, num_classes);
  descriptor_partition_range(pop, spec, rng, 0, spec.num_clients, pool);
  return pop;
}

}  // namespace groupfel::data
