// Local update rules — the client-side optimization step of Algorithm 1
// line 13, pluggable so the baselines of §7.1 share one training loop:
//   SgdRule      : plain minibatch SGD (FedAvg)
//   FedProxRule  : SGD + proximal term mu*(x - x_ref)     (fedprox.cpp)
//   ScaffoldRule : SGD + control variates (c - c_i)       (scaffold.cpp)
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "data/client_data.hpp"
#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "runtime/rng.hpp"

namespace groupfel::algorithms {

struct LocalTrainConfig {
  std::size_t epochs = 2;       ///< E, local rounds per group round
  std::size_t batch_size = 16;
  float lr = 0.05f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
  /// A/B toggle for the zero-alloc minibatch pipeline: when true (default)
  /// run_local_sgd reuses per-thread batch/loss/permutation buffers via
  /// batch_into + softmax_cross_entropy_into; when false it re-allocates a
  /// fresh Batch and gradient per step (the legacy path benchmarked by
  /// bench/sweep_throughput). Both paths are bit-identical.
  bool reuse_batch_buffers = true;
};

class LocalUpdateRule {
 public:
  virtual ~LocalUpdateRule() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Trains `model` in place on the client's data for cfg.epochs local
  /// epochs of minibatch SGD. `data` views either a resident shard or a
  /// lazily synthesized one (data/client_data.hpp); `reference_params` is
  /// the group model the client started from (x^g_{t,k}); `client_id` keys
  /// persistent per-client state (SCAFFOLD). Returns the mean training loss.
  ///
  /// Thread-safety: may be called concurrently for DIFFERENT client_ids.
  virtual double train_client(nn::Model& model, data::ClientDataRef data,
                              std::span<const float> reference_params,
                              std::size_t client_id,
                              const LocalTrainConfig& cfg,
                              runtime::Rng& rng) = 0;

  /// Called once, serially, after each global aggregation.
  virtual void on_global_round_end() {}

  /// Relative communication volume per group round (1 = one model). Used by
  /// the cost model selection (SCAFFOLD ships control variates too).
  [[nodiscard]] virtual double communication_factor() const { return 1.0; }
};

/// Shared minibatch-SGD loop used by all rules. `adjust` is the per-step
/// gradient hook (may be null).
double run_local_sgd(nn::Model& model, data::ClientDataRef data,
                     const LocalTrainConfig& cfg, runtime::Rng& rng,
                     const nn::SgdOptimizer::GradAdjust& adjust);

/// Plain SGD (FedAvg's local step).
class SgdRule final : public LocalUpdateRule {
 public:
  [[nodiscard]] std::string name() const override { return "SGD"; }
  double train_client(nn::Model& model, data::ClientDataRef data,
                      std::span<const float> reference_params,
                      std::size_t client_id, const LocalTrainConfig& cfg,
                      runtime::Rng& rng) override;
};

}  // namespace groupfel::algorithms
