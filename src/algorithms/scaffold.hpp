// SCAFFOLD (Karimireddy et al. [7]): stochastic controlled averaging.
//
// Each client keeps a control variate c_i and the server keeps c. Local
// steps descend along grad - c_i + c, correcting client drift; after local
// training the client updates (option II)
//   c_i^+ = c_i - c + (x_ref - x_local) / (steps * lr)
// and the server folds the deltas into c. SCAFFOLD ships the control
// variate alongside the model, doubling communication — reflected in
// communication_factor() and the SCAFFOLD-SecAgg cost curve of Fig. 8.
#pragma once

#include <cstdint>

#include "algorithms/local_trainer.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace groupfel::algorithms {

class ScaffoldRule final : public LocalUpdateRule {
 public:
  /// `num_clients` sizes the per-client state table; `total_weight` is the
  /// server-side averaging denominator N in c <- c + (1/N) sum delta_ci.
  explicit ScaffoldRule(std::size_t num_clients);

  [[nodiscard]] std::string name() const override { return "SCAFFOLD"; }

  double train_client(nn::Model& model, data::ClientDataRef data,
                      std::span<const float> reference_params,
                      std::size_t client_id, const LocalTrainConfig& cfg,
                      runtime::Rng& rng) override;

  void on_global_round_end() override;

  [[nodiscard]] double communication_factor() const override { return 2.0; }

  /// Server control variate (for tests). Returns a locked copy: concurrent
  /// clients may be staging deltas while a monitor reads.
  [[nodiscard]] std::vector<float> server_control() const GF_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return c_;
  }

 private:
  const std::size_t num_clients_;
  mutable util::Mutex mu_;
  std::vector<float> c_ GF_GUARDED_BY(mu_);        // server control variate
  std::vector<std::vector<float>> c_i_ GF_GUARDED_BY(mu_);  // per-client
  /// Per-client c_i deltas staged this round (accumulated across the K
  /// group rounds a client trains in). Folding them into c_ in ascending
  /// client order at round end keeps the floating-point sum independent of
  /// the order concurrent clients finish — bit-identical for any pool size
  /// and any cell scheduling.
  std::vector<std::vector<float>> pending_ GF_GUARDED_BY(mu_);
  std::vector<std::size_t> pending_ids_ GF_GUARDED_BY(mu_);
  /// Round epoch a slot was staged in.
  std::vector<std::uint64_t> stage_mark_ GF_GUARDED_BY(mu_);
  std::uint64_t round_epoch_ GF_GUARDED_BY(mu_) = 1;
};

}  // namespace groupfel::algorithms
