#include "algorithms/fedprox.hpp"

namespace groupfel::algorithms {

double FedProxRule::train_client(nn::Model& model, data::ClientDataRef data,
                                 std::span<const float> reference_params,
                                 std::size_t /*client_id*/,
                                 const LocalTrainConfig& cfg,
                                 runtime::Rng& rng) {
  const float mu = mu_;
  const auto adjust = [mu, reference_params](std::size_t offset,
                                             std::span<const float> param,
                                             std::span<float> grad) {
    for (std::size_t i = 0; i < grad.size(); ++i)
      grad[i] += mu * (param[i] - reference_params[offset + i]);
  };
  return run_local_sgd(model, data, cfg, rng, adjust);
}

}  // namespace groupfel::algorithms
