#include "algorithms/fedclar.hpp"

#include <numeric>

#include "backdoor/cosine.hpp"

namespace groupfel::algorithms {

namespace {
struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};
}  // namespace

std::vector<std::size_t> fedclar_cluster(
    const std::vector<std::vector<float>>& client_updates,
    double merge_threshold) {
  const std::size_t n = client_updates.size();
  UnionFind uf(n);
  if (n > 1) {
    const auto dist = backdoor::pairwise_cosine_distance(client_updates);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (dist[i][j] < merge_threshold) uf.unite(i, j);
  }
  // Densify cluster ids.
  std::vector<std::size_t> ids(n);
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = uf.find(i);
    std::size_t id = roots.size();
    for (std::size_t k = 0; k < roots.size(); ++k)
      if (roots[k] == r) {
        id = k;
        break;
      }
    if (id == roots.size()) roots.push_back(r);
    ids[i] = id;
  }
  return ids;
}

}  // namespace groupfel::algorithms
