#include "algorithms/local_trainer.hpp"

#include <numeric>

namespace groupfel::algorithms {

namespace {

/// Per-thread minibatch scratch: the epoch permutation, the gathered batch,
/// and the loss result (with its gradient tensor) persist across clients
/// and rounds, so steady-state SGD steps perform zero tensor constructions.
/// Thread-local because run_local_sgd runs concurrently for different
/// clients on the trainer's pool.
struct SgdScratch {
  std::vector<std::size_t> order;
  data::DataSet::Batch batch;
  nn::LossResult loss;
};

}  // namespace

double run_local_sgd(nn::Model& model, data::ClientDataRef data,
                     const LocalTrainConfig& cfg, runtime::Rng& rng,
                     const nn::SgdOptimizer::GradAdjust& adjust) {
  if (data.size() == 0) return 0.0;
  nn::SgdOptimizer opt({.lr = cfg.lr,
                        .momentum = cfg.momentum,
                        .weight_decay = cfg.weight_decay});
  const bool reuse = cfg.reuse_batch_buffers;
  thread_local SgdScratch scratch;
  std::vector<std::size_t> order_storage;  // legacy path: fresh per call
  std::vector<std::size_t>& order = reuse ? scratch.order : order_storage;
  order.resize(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double loss_sum = 0.0;
  std::size_t loss_batches = 0;
  // Gradients are zeroed once up front and then cleared inside opt.step's
  // update pass, so each batch touches every gradient tensor once, not twice.
  model.zero_grad();
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    // The permutation buffer is reused; the shuffle itself is per-epoch and
    // cumulative, consuming the RNG stream identically on both paths.
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += cfg.batch_size) {
      const std::size_t end = std::min(order.size(), start + cfg.batch_size);
      const std::span<const std::size_t> batch_idx(order.data() + start,
                                                   end - start);
      double step_loss;
      if (reuse) {
        data.batch_into(batch_idx, scratch.batch);
        const nn::Tensor& logits =
            model.forward(scratch.batch.features, /*train=*/true);
        nn::softmax_cross_entropy_into(logits, scratch.batch.labels,
                                       scratch.loss);
        model.backward(scratch.loss.grad);
        step_loss = scratch.loss.loss;
      } else {
        const data::DataSet::Batch batch = data.batch(batch_idx);
        const nn::Tensor logits =
            model.forward(batch.features, /*train=*/true);
        const nn::LossResult lr =
            nn::softmax_cross_entropy(logits, batch.labels);
        model.backward(lr.grad);
        step_loss = lr.loss;
      }
      opt.step(model, adjust, /*zero_grads=*/true);
      loss_sum += step_loss;
      ++loss_batches;
    }
  }
  return loss_batches > 0 ? loss_sum / static_cast<double>(loss_batches) : 0.0;
}

double SgdRule::train_client(nn::Model& model, data::ClientDataRef data,
                             std::span<const float> /*reference_params*/,
                             std::size_t /*client_id*/,
                             const LocalTrainConfig& cfg, runtime::Rng& rng) {
  return run_local_sgd(model, data, cfg, rng, nullptr);
}

}  // namespace groupfel::algorithms
