#include "algorithms/local_trainer.hpp"

#include <numeric>

namespace groupfel::algorithms {

double run_local_sgd(nn::Model& model, const data::ClientShard& shard,
                     const LocalTrainConfig& cfg, runtime::Rng& rng,
                     const nn::SgdOptimizer::GradAdjust& adjust) {
  if (shard.size() == 0) return 0.0;
  nn::SgdOptimizer opt({.lr = cfg.lr,
                        .momentum = cfg.momentum,
                        .weight_decay = cfg.weight_decay});
  std::vector<std::size_t> order(shard.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double loss_sum = 0.0;
  std::size_t loss_batches = 0;
  // Gradients are zeroed once up front and then cleared inside opt.step's
  // update pass, so each batch touches every gradient tensor once, not twice.
  model.zero_grad();
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += cfg.batch_size) {
      const std::size_t end = std::min(order.size(), start + cfg.batch_size);
      const std::span<const std::size_t> batch_idx(order.data() + start,
                                                   end - start);
      const data::DataSet::Batch batch = shard.batch(batch_idx);
      const nn::Tensor logits = model.forward(batch.features, /*train=*/true);
      const nn::LossResult lr = nn::softmax_cross_entropy(logits, batch.labels);
      model.backward(lr.grad);
      opt.step(model, adjust, /*zero_grads=*/true);
      loss_sum += lr.loss;
      ++loss_batches;
    }
  }
  return loss_batches > 0 ? loss_sum / static_cast<double>(loss_batches) : 0.0;
}

double SgdRule::train_client(nn::Model& model, const data::ClientShard& shard,
                             std::span<const float> /*reference_params*/,
                             std::size_t /*client_id*/,
                             const LocalTrainConfig& cfg, runtime::Rng& rng) {
  return run_local_sgd(model, shard, cfg, rng, nullptr);
}

}  // namespace groupfel::algorithms
