#include "algorithms/scaffold.hpp"

#include <algorithm>

#include "util/sync.hpp"

namespace groupfel::algorithms {

ScaffoldRule::ScaffoldRule(std::size_t num_clients)
    : num_clients_(num_clients), c_i_(num_clients) {}

double ScaffoldRule::train_client(nn::Model& model, data::ClientDataRef data,
                                  std::span<const float> reference_params,
                                  std::size_t client_id,
                                  const LocalTrainConfig& cfg,
                                  runtime::Rng& rng) {
  if (client_id >= num_clients_)
    throw std::out_of_range("ScaffoldRule: client_id out of range");
  const std::size_t dim = model.param_count();

  // Snapshot c and c_i for this client (lazily zero-initialized).
  std::vector<float> c_snapshot, ci_snapshot;
  {
    util::MutexLock lock(mu_);
    if (c_.empty()) c_.assign(dim, 0.0f);
    if (c_i_[client_id].empty()) c_i_[client_id].assign(dim, 0.0f);
    c_snapshot = c_;
    ci_snapshot = c_i_[client_id];
  }

  const auto adjust = [&](std::size_t offset, std::span<const float>,
                          std::span<float> grad) {
    for (std::size_t i = 0; i < grad.size(); ++i)
      grad[i] += c_snapshot[offset + i] - ci_snapshot[offset + i];
  };
  const double loss = run_local_sgd(model, data, cfg, rng, adjust);

  // Number of SGD steps taken locally.
  const std::size_t batches_per_epoch =
      data.size() == 0
          ? 0
          : (data.size() + cfg.batch_size - 1) / cfg.batch_size;
  const std::size_t steps = cfg.epochs * batches_per_epoch;
  if (steps == 0) return loss;

  // Option II control-variate update.
  const std::vector<float> x_local = model.flat_parameters();
  const float inv_step_lr = 1.0f / (static_cast<float>(steps) * cfg.lr);
  std::vector<float> ci_new(dim);
  for (std::size_t i = 0; i < dim; ++i)
    ci_new[i] = ci_snapshot[i] - c_snapshot[i] +
                (reference_params[i] - x_local[i]) * inv_step_lr;

  // Stage this client's delta in a private slot (accumulating across the
  // client's K group-round calls, which are sequential in time); the fold
  // into c_ happens at round end in ascending client order so the
  // floating-point sum does not depend on which thread finished first.
  {
    util::MutexLock lock(mu_);
    if (pending_.empty()) pending_.resize(num_clients_);
    if (stage_mark_.empty()) stage_mark_.assign(num_clients_, 0);
    if (stage_mark_[client_id] != round_epoch_) {
      stage_mark_[client_id] = round_epoch_;
      pending_[client_id].assign(dim, 0.0f);
      pending_ids_.push_back(client_id);
    }
    for (std::size_t i = 0; i < dim; ++i)
      pending_[client_id][i] += ci_new[i] - c_i_[client_id][i];
    c_i_[client_id] = std::move(ci_new);
  }
  return loss;
}

void ScaffoldRule::on_global_round_end() {
  util::MutexLock lock(mu_);
  ++round_epoch_;
  if (pending_ids_.empty()) return;
  // c <- c + (participants / N) * mean(delta_ci)  ==  c + sum(delta)/N,
  // summed in ascending client order (deterministic reduction).
  std::sort(pending_ids_.begin(), pending_ids_.end());
  if (c_.empty()) c_.assign(pending_[pending_ids_.front()].size(), 0.0f);
  const float inv_n = 1.0f / static_cast<float>(num_clients_);
  for (const std::size_t cid : pending_ids_)
    for (std::size_t i = 0; i < c_.size(); ++i)
      c_[i] += pending_[cid][i] * inv_n;
  pending_ids_.clear();
}

}  // namespace groupfel::algorithms
