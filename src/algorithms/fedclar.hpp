// FedCLAR-style clustering (Presotto et al. [12]) — the personalized-FL
// baseline. At a chosen round, clients are clustered by the cosine
// similarity of their model updates; afterwards each cluster trains its own
// model. The paper includes it to show personalization HURTS the global
// model (Fig. 9's accuracy drop after the clustering round).
#pragma once

#include <vector>

namespace groupfel::algorithms {

/// Agglomerative single-linkage clustering over cosine distance: clients
/// whose updates are closer than `merge_threshold` end up in one cluster
/// (union-find over all pairs under the threshold).
/// Returns cluster id per client (ids are dense, 0-based).
[[nodiscard]] std::vector<std::size_t> fedclar_cluster(
    const std::vector<std::vector<float>>& client_updates,
    double merge_threshold);

}  // namespace groupfel::algorithms
