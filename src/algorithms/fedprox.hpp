// FedProx (Li et al. [6]): local SGD with a proximal term that keeps the
// local iterate near the model the client started from —
//   grad' = grad + mu * (x - x_ref).
// Extra per-step computation is why FedProx loses ground when measured by
// cost rather than rounds (Fig. 10 vs Fig. 9).
#pragma once

#include "algorithms/local_trainer.hpp"

namespace groupfel::algorithms {

class FedProxRule final : public LocalUpdateRule {
 public:
  explicit FedProxRule(float mu) : mu_(mu) {}

  [[nodiscard]] std::string name() const override { return "FedProx"; }

  double train_client(nn::Model& model, data::ClientDataRef data,
                      std::span<const float> reference_params,
                      std::size_t client_id, const LocalTrainConfig& cfg,
                      runtime::Rng& rng) override;

  [[nodiscard]] float mu() const noexcept { return mu_; }

 private:
  float mu_;
};

}  // namespace groupfel::algorithms
