// Global-aggregation weights (§3.1 and §6.2).
//
// Three modes:
//   Biased     : w_g = n_g / n_t (Algorithm 1 line 15 as written) — biased
//                toward frequently-sampled groups, which the paper argues is
//                acceptable (and even desirable) for CoV-prioritized
//                sampling.
//   Unbiased   : Eq. (4): w_g = (1 / (p_g S)) * n_g / n — importance-
//                corrected so E[x_{t+1}] matches full participation, but
//                numerically fragile when some p_g is tiny.
//   Stabilized : Eq. (35): the unbiased weights renormalized to sum to 1 —
//                trades exact unbiasedness for numerical stability.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace groupfel::sampling {

enum class AggregationMode { kBiased, kUnbiased, kStabilized };

[[nodiscard]] std::string to_string(AggregationMode mode);
[[nodiscard]] AggregationMode aggregation_mode_from_string(const std::string& name);

/// Computes the per-sampled-group aggregation weights.
///   sampled      : indices of the sampled groups (size S)
///   p            : sampling probability of EVERY group
///   group_sizes  : n_g of EVERY group (data entries)
/// Returned vector aligns with `sampled`.
[[nodiscard]] std::vector<double> aggregation_weights(
    AggregationMode mode, std::span<const std::size_t> sampled,
    std::span<const double> p, std::span<const std::size_t> group_sizes);

}  // namespace groupfel::sampling
