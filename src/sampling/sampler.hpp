// Probability-based group sampling at the cloud (§6).
//
// The sampling probability of group g is (Eq. 34)
//     p_g = w(1/CoV(g)) / sum_h w(1/CoV(h))
// with three non-decreasing weight functions considered by the paper:
//     RCoV   : w(x) = x
//     SRCoV  : w(x) = x^2
//     ESRCoV : w(x) = e^{x^2}   (the paper's default — best performance)
// plus uniform Random sampling as the baseline.
#pragma once

#include <string>
#include <vector>

#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"

namespace groupfel::sampling {

enum class SamplingMethod { kRandom, kRCov, kSRCov, kESRCov };

[[nodiscard]] std::string to_string(SamplingMethod method);
[[nodiscard]] SamplingMethod sampling_method_from_string(const std::string& name);

/// Computes the probability vector p over groups from their CoV values
/// (Eq. 34). CoV values are floored at `cov_floor` so 1/CoV stays finite for
/// perfectly balanced groups; ESRCoV is computed with a max-shifted exponent
/// so it never overflows. Result sums to 1.
[[nodiscard]] std::vector<double> sampling_probabilities(
    SamplingMethod method, std::span<const double> group_covs,
    double cov_floor = 0.05);

/// Default CoV floor shared by both Eq. 34 producers.
inline constexpr double kDefaultCovFloor = 0.05;

/// Streaming Eq. 34 for fleet-scale group counts: writes p into `out`
/// (reusing its storage across regroupings). The normalizer is a
/// fixed-shape blocked tree reduction — per-block Kahan-compensated sums
/// combined in deterministic block order (the nn::weighted_average_into
/// pattern), with the block decomposition fixed by the group count alone —
/// so the result is bit-identical for any `pool` size including nullptr
/// (serial). ESRCoV precomputes the max exponent with a blocked max scan,
/// keeping the overflow-free shift. The result is GF_CHECKed against the
/// probability-vector invariant below.
void sampling_probabilities_into(SamplingMethod method,
                                 std::span<const double> group_covs,
                                 std::vector<double>& out,
                                 double cov_floor = kDefaultCovFloor,
                                 runtime::ThreadPool* pool = nullptr);

/// The PR-2 invariant set, extended to probability vectors: every entry
/// finite and non-negative, total mass 1 within tolerance. GF_CHECKs (always
/// on) with `where` naming the entry point; shared by the Eq. 34 producers
/// and the sample_groups consumer so the contract lives in one place.
void check_probability_vector(std::span<const double> p, const char* where);

/// Draws `s` distinct group indices with probabilities proportional to `p`
/// (sequential weighted draws without replacement).
[[nodiscard]] std::vector<std::size_t> sample_groups(std::span<const double> p,
                                                     std::size_t s,
                                                     runtime::Rng& rng);

}  // namespace groupfel::sampling
