#include "sampling/weights.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace groupfel::sampling {

std::string to_string(AggregationMode mode) {
  switch (mode) {
    case AggregationMode::kBiased: return "biased";
    case AggregationMode::kUnbiased: return "unbiased";
    case AggregationMode::kStabilized: return "stabilized";
  }
  return "?";
}

AggregationMode aggregation_mode_from_string(const std::string& name) {
  if (name == "biased") return AggregationMode::kBiased;
  if (name == "unbiased") return AggregationMode::kUnbiased;
  if (name == "stabilized") return AggregationMode::kStabilized;
  throw std::invalid_argument("unknown aggregation mode: " + name);
}

std::vector<double> aggregation_weights(AggregationMode mode,
                                        std::span<const std::size_t> sampled,
                                        std::span<const double> p,
                                        std::span<const std::size_t> group_sizes) {
  GF_CHECK_EQ(p.size(), group_sizes.size(),
              "aggregation_weights: probability per group");
  GF_CHECK(!sampled.empty(), "aggregation_weights: no sampled groups");
  for (auto g : sampled)
    GF_CHECK(g < group_sizes.size(), "aggregation_weights: sampled index ", g,
             " out of range [0, ", group_sizes.size(), ")");
  const double s = static_cast<double>(sampled.size());

  double n_total = 0.0;  // n: all data across all groups
  for (auto g : group_sizes) n_total += static_cast<double>(g);
  double n_t = 0.0;  // n_t: data across the sampled groups this round
  for (auto g : sampled) n_t += static_cast<double>(group_sizes[g]);
  GF_CHECK(n_total > 0.0 && n_t > 0.0, "aggregation_weights: empty groups");

  std::vector<double> w(sampled.size());
  switch (mode) {
    case AggregationMode::kBiased:
      for (std::size_t i = 0; i < sampled.size(); ++i)
        w[i] = static_cast<double>(group_sizes[sampled[i]]) / n_t;
      break;
    case AggregationMode::kUnbiased:
      for (std::size_t i = 0; i < sampled.size(); ++i) {
        const double pg = p[sampled[i]];
        if (pg <= 0.0)
          throw std::invalid_argument(
              "aggregation_weights: sampled group with p_g == 0");
        w[i] = (1.0 / (pg * s)) *
               (static_cast<double>(group_sizes[sampled[i]]) / n_total);
      }
      break;
    case AggregationMode::kStabilized: {
      double total = 0.0;
      for (std::size_t i = 0; i < sampled.size(); ++i) {
        const double pg = p[sampled[i]];
        if (pg <= 0.0)
          throw std::invalid_argument(
              "aggregation_weights: sampled group with p_g == 0");
        w[i] = (1.0 / (pg * s)) *
               (static_cast<double>(group_sizes[sampled[i]]) / n_total);
        total += w[i];
      }
      for (auto& v : w) v /= total;
      break;
    }
  }
  return w;
}

}  // namespace groupfel::sampling
