#include "sampling/sampler.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace groupfel::sampling {

std::string to_string(SamplingMethod method) {
  switch (method) {
    case SamplingMethod::kRandom: return "Random";
    case SamplingMethod::kRCov: return "RCoV";
    case SamplingMethod::kSRCov: return "SRCoV";
    case SamplingMethod::kESRCov: return "ESRCoV";
  }
  return "?";
}

SamplingMethod sampling_method_from_string(const std::string& name) {
  if (name == "Random" || name == "random" || name == "RS")
    return SamplingMethod::kRandom;
  if (name == "RCoV" || name == "rcov") return SamplingMethod::kRCov;
  if (name == "SRCoV" || name == "srcov") return SamplingMethod::kSRCov;
  if (name == "ESRCoV" || name == "esrcov" || name == "CoVS")
    return SamplingMethod::kESRCov;
  throw std::invalid_argument("unknown sampling method: " + name);
}

std::vector<double> sampling_probabilities(SamplingMethod method,
                                           std::span<const double> group_covs,
                                           double cov_floor) {
  GF_CHECK(!group_covs.empty(), "sampling_probabilities: no groups");
  GF_CHECK(cov_floor > 0.0, "sampling_probabilities: cov_floor must be > 0");
  const std::size_t n = group_covs.size();
  std::vector<double> p(n);

  if (method == SamplingMethod::kRandom) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n));
    return p;
  }

  // x_g = 1 / max(CoV, floor); the floor keeps perfectly-IID groups finite.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    GF_CHECK(group_covs[i] >= 0.0, "sampling_probabilities: negative CoV ",
             group_covs[i], " for group ", i);
    x[i] = 1.0 / std::max(group_covs[i], cov_floor);
  }

  double total = 0.0;
  switch (method) {
    case SamplingMethod::kRCov:
      for (std::size_t i = 0; i < n; ++i) total += (p[i] = x[i]);
      break;
    case SamplingMethod::kSRCov:
      for (std::size_t i = 0; i < n; ++i) total += (p[i] = x[i] * x[i]);
      break;
    case SamplingMethod::kESRCov: {
      // Max-shifted exponent: e^{x^2 - max} is exact after normalization
      // and never overflows.
      double mx = 0.0;
      for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, x[i] * x[i]);
      for (std::size_t i = 0; i < n; ++i)
        total += (p[i] = std::exp(x[i] * x[i] - mx));
      break;
    }
    case SamplingMethod::kRandom: break;  // handled above
  }
  GF_CHECK(total > 0.0 && std::isfinite(total),
           "sampling_probabilities: degenerate normalizer ", total);
  for (auto& v : p) v /= total;
  return p;
}

namespace {

/// Group-block granularity for the Eq. 34 reductions. Fixed by the group
/// count alone, so the blocked sums below have the same shape — and
/// therefore the same result — for any pool size. One block (every
/// pre-fleet scenario) reproduces the historical single-stream Kahan
/// accumulation exactly.
constexpr std::size_t kGroupBlock = 2048;

/// Runs body(block_index) over ceil(n / kGroupBlock) blocks.
template <typename Body>
void for_each_group_block(std::size_t n, runtime::ThreadPool* pool,
                          const Body& body) {
  const std::size_t blocks = (n + kGroupBlock - 1) / kGroupBlock;
  if (pool != nullptr && pool->size() > 1 && blocks > 1) {
    pool->parallel_for(blocks, body);
  } else {
    for (std::size_t bi = 0; bi < blocks; ++bi) body(bi);
  }
}

}  // namespace

void sampling_probabilities_into(SamplingMethod method,
                                 std::span<const double> group_covs,
                                 std::vector<double>& out, double cov_floor,
                                 runtime::ThreadPool* pool) {
  GF_CHECK(!group_covs.empty(), "sampling_probabilities_into: no groups");
  GF_CHECK(cov_floor > 0.0,
           "sampling_probabilities_into: cov_floor must be > 0");
  const std::size_t n = group_covs.size();
  const std::size_t blocks = (n + kGroupBlock - 1) / kGroupBlock;
  out.resize(n);

  if (method == SamplingMethod::kRandom) {
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(n));
    check_probability_vector(out, "sampling_probabilities_into");
    return;
  }

  // x_g = 1 / max(CoV, floor); the floor keeps perfectly-IID groups finite.
  const auto weight_x = [&](std::size_t i) {
    GF_CHECK(group_covs[i] >= 0.0,
             "sampling_probabilities_into: negative CoV ", group_covs[i],
             " for group ", i);
    return 1.0 / std::max(group_covs[i], cov_floor);
  };
  // Per-block Kahan accumulator: a naive sum over 10^5+ groups loses
  // enough mass to trip the invariant check below.
  struct Kahan {
    double total = 0.0, comp = 0.0;
    void add(double v) {
      const double y = v - comp;
      const double t = total + y;
      comp = (t - total) - y;
      total = t;
    }
  };
  std::vector<double> block_totals(blocks, 0.0);

  double shift = 0.0;
  if (method == SamplingMethod::kESRCov) {
    // Pass 1: exponents into `out` (reused as scratch) and per-block
    // maxima; the global max shift keeps e^{x^2} overflow-free.
    std::vector<double> block_max(blocks, 0.0);
    for_each_group_block(n, pool, [&](std::size_t bi) {
      const std::size_t i0 = bi * kGroupBlock;
      const std::size_t i1 = std::min(n, i0 + kGroupBlock);
      double mx = 0.0;
      for (std::size_t i = i0; i < i1; ++i) {
        const double x = weight_x(i);
        out[i] = x * x;
        mx = std::max(mx, out[i]);
      }
      block_max[bi] = mx;
    });
    for (std::size_t bi = 0; bi < blocks; ++bi)
      shift = std::max(shift, block_max[bi]);
    // Pass 2: per-block Kahan sums of the shifted exponentials.
    for_each_group_block(n, pool, [&](std::size_t bi) {
      const std::size_t i0 = bi * kGroupBlock;
      const std::size_t i1 = std::min(n, i0 + kGroupBlock);
      Kahan local;
      for (std::size_t i = i0; i < i1; ++i) local.add(std::exp(out[i] - shift));
      block_totals[bi] = local.total;
    });
  } else {
    // One blocked pass: weights into `out`, per-block Kahan normalizer.
    for_each_group_block(n, pool, [&](std::size_t bi) {
      const std::size_t i0 = bi * kGroupBlock;
      const std::size_t i1 = std::min(n, i0 + kGroupBlock);
      Kahan local;
      for (std::size_t i = i0; i < i1; ++i) {
        const double x = weight_x(i);
        out[i] = method == SamplingMethod::kSRCov ? x * x : x;
        local.add(out[i]);
      }
      block_totals[bi] = local.total;
    });
  }
  // Combine the per-block partials in deterministic block order.
  Kahan combined;
  for (std::size_t bi = 0; bi < blocks; ++bi) combined.add(block_totals[bi]);
  const double total = combined.total;
  GF_CHECK(total > 0.0 && std::isfinite(total),
           "sampling_probabilities_into: degenerate normalizer ", total);

  for_each_group_block(n, pool, [&](std::size_t bi) {
    const std::size_t i0 = bi * kGroupBlock;
    const std::size_t i1 = std::min(n, i0 + kGroupBlock);
    if (method == SamplingMethod::kESRCov) {
      for (std::size_t i = i0; i < i1; ++i)
        out[i] = std::exp(out[i] - shift) / total;
    } else {
      for (std::size_t i = i0; i < i1; ++i) out[i] /= total;
    }
  });
  check_probability_vector(out, "sampling_probabilities_into");
}

void check_probability_vector(std::span<const double> p, const char* where) {
  double mass = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    GF_CHECK(std::isfinite(p[i]), where, ": probability ", p[i], " at ", i,
             " is not finite");
    GF_CHECK(p[i] >= 0.0, where, ": negative probability ", p[i], " at ", i);
    mass += p[i];
  }
  GF_CHECK(p.empty() || std::abs(mass - 1.0) < 1e-6, where,
           ": probabilities sum to ", mass, ", not 1");
}

std::vector<std::size_t> sample_groups(std::span<const double> p,
                                       std::size_t s, runtime::Rng& rng) {
  GF_CHECK(s <= p.size(), "sample_groups: s = ", s, " exceeds ", p.size(),
           " groups");
#if GROUPFEL_DEBUG_CHECKS
  check_probability_vector(p, "sample_groups");
#endif
  std::vector<double> weights(p.begin(), p.end());
  std::vector<std::size_t> chosen;
  chosen.reserve(s);
  for (std::size_t draw = 0; draw < s; ++draw) {
    const std::size_t idx = rng.categorical(weights);
    chosen.push_back(idx);
    weights[idx] = 0.0;  // without replacement
  }
  return chosen;
}

}  // namespace groupfel::sampling
