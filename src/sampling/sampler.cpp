#include "sampling/sampler.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace groupfel::sampling {

std::string to_string(SamplingMethod method) {
  switch (method) {
    case SamplingMethod::kRandom: return "Random";
    case SamplingMethod::kRCov: return "RCoV";
    case SamplingMethod::kSRCov: return "SRCoV";
    case SamplingMethod::kESRCov: return "ESRCoV";
  }
  return "?";
}

SamplingMethod sampling_method_from_string(const std::string& name) {
  if (name == "Random" || name == "random" || name == "RS")
    return SamplingMethod::kRandom;
  if (name == "RCoV" || name == "rcov") return SamplingMethod::kRCov;
  if (name == "SRCoV" || name == "srcov") return SamplingMethod::kSRCov;
  if (name == "ESRCoV" || name == "esrcov" || name == "CoVS")
    return SamplingMethod::kESRCov;
  throw std::invalid_argument("unknown sampling method: " + name);
}

std::vector<double> sampling_probabilities(SamplingMethod method,
                                           std::span<const double> group_covs,
                                           double cov_floor) {
  GF_CHECK(!group_covs.empty(), "sampling_probabilities: no groups");
  GF_CHECK(cov_floor > 0.0, "sampling_probabilities: cov_floor must be > 0");
  const std::size_t n = group_covs.size();
  std::vector<double> p(n);

  if (method == SamplingMethod::kRandom) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n));
    return p;
  }

  // x_g = 1 / max(CoV, floor); the floor keeps perfectly-IID groups finite.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    GF_CHECK(group_covs[i] >= 0.0, "sampling_probabilities: negative CoV ",
             group_covs[i], " for group ", i);
    x[i] = 1.0 / std::max(group_covs[i], cov_floor);
  }

  double total = 0.0;
  switch (method) {
    case SamplingMethod::kRCov:
      for (std::size_t i = 0; i < n; ++i) total += (p[i] = x[i]);
      break;
    case SamplingMethod::kSRCov:
      for (std::size_t i = 0; i < n; ++i) total += (p[i] = x[i] * x[i]);
      break;
    case SamplingMethod::kESRCov: {
      // Max-shifted exponent: e^{x^2 - max} is exact after normalization
      // and never overflows.
      double mx = 0.0;
      for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, x[i] * x[i]);
      for (std::size_t i = 0; i < n; ++i)
        total += (p[i] = std::exp(x[i] * x[i] - mx));
      break;
    }
    case SamplingMethod::kRandom: break;  // handled above
  }
  GF_CHECK(total > 0.0 && std::isfinite(total),
           "sampling_probabilities: degenerate normalizer ", total);
  for (auto& v : p) v /= total;
  return p;
}

void sampling_probabilities_into(SamplingMethod method,
                                 std::span<const double> group_covs,
                                 std::vector<double>& out, double cov_floor) {
  GF_CHECK(!group_covs.empty(), "sampling_probabilities_into: no groups");
  GF_CHECK(cov_floor > 0.0,
           "sampling_probabilities_into: cov_floor must be > 0");
  const std::size_t n = group_covs.size();
  out.resize(n);

  if (method == SamplingMethod::kRandom) {
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(n));
    check_probability_vector(out, "sampling_probabilities_into");
    return;
  }

  // One pass: weight each group and accumulate the normalizer with Kahan
  // compensation (a naive sum over 10^5+ groups loses enough mass to trip
  // the invariant check below). ESRCoV rescales the running sum whenever a
  // new maximum exponent appears — the streaming form of the max shift.
  double total = 0.0, comp = 0.0, shift = 0.0;
  const auto accumulate = [&](double v) {
    const double y = v - comp;
    const double t = total + y;
    comp = (t - total) - y;
    total = t;
  };
  for (std::size_t i = 0; i < n; ++i) {
    GF_CHECK(group_covs[i] >= 0.0,
             "sampling_probabilities_into: negative CoV ", group_covs[i],
             " for group ", i);
    const double x = 1.0 / std::max(group_covs[i], cov_floor);
    double w = 0.0;
    switch (method) {
      case SamplingMethod::kRCov:
        w = x;
        break;
      case SamplingMethod::kSRCov:
        w = x * x;
        break;
      case SamplingMethod::kESRCov: {
        const double e = x * x;
        if (e > shift) {
          // Re-base the running sum (and its compensation) to the new max.
          const double scale = std::exp(shift - e);
          total *= scale;
          comp *= scale;
          shift = e;
        }
        // out temporarily stores the exponent; normalized below.
        out[i] = e;
        accumulate(std::exp(e - shift));
        continue;
      }
      case SamplingMethod::kRandom:
        break;  // handled above
    }
    out[i] = w;
    accumulate(w);
  }
  GF_CHECK(total > 0.0 && std::isfinite(total),
           "sampling_probabilities_into: degenerate normalizer ", total);
  if (method == SamplingMethod::kESRCov) {
    for (auto& v : out) v = std::exp(v - shift) / total;
  } else {
    for (auto& v : out) v /= total;
  }
  check_probability_vector(out, "sampling_probabilities_into");
}

void check_probability_vector(std::span<const double> p, const char* where) {
  double mass = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    GF_CHECK(std::isfinite(p[i]), where, ": probability ", p[i], " at ", i,
             " is not finite");
    GF_CHECK(p[i] >= 0.0, where, ": negative probability ", p[i], " at ", i);
    mass += p[i];
  }
  GF_CHECK(p.empty() || std::abs(mass - 1.0) < 1e-6, where,
           ": probabilities sum to ", mass, ", not 1");
}

std::vector<std::size_t> sample_groups(std::span<const double> p,
                                       std::size_t s, runtime::Rng& rng) {
  GF_CHECK(s <= p.size(), "sample_groups: s = ", s, " exceeds ", p.size(),
           " groups");
#if GROUPFEL_DEBUG_CHECKS
  check_probability_vector(p, "sample_groups");
#endif
  std::vector<double> weights(p.begin(), p.end());
  std::vector<std::size_t> chosen;
  chosen.reserve(s);
  for (std::size_t draw = 0; draw < s; ++draw) {
    const std::size_t idx = rng.categorical(weights);
    chosen.push_back(idx);
    weights[idx] = 0.0;  // without replacement
  }
  return chosen;
}

}  // namespace groupfel::sampling
