#include "sampling/sampler.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace groupfel::sampling {

std::string to_string(SamplingMethod method) {
  switch (method) {
    case SamplingMethod::kRandom: return "Random";
    case SamplingMethod::kRCov: return "RCoV";
    case SamplingMethod::kSRCov: return "SRCoV";
    case SamplingMethod::kESRCov: return "ESRCoV";
  }
  return "?";
}

SamplingMethod sampling_method_from_string(const std::string& name) {
  if (name == "Random" || name == "random" || name == "RS")
    return SamplingMethod::kRandom;
  if (name == "RCoV" || name == "rcov") return SamplingMethod::kRCov;
  if (name == "SRCoV" || name == "srcov") return SamplingMethod::kSRCov;
  if (name == "ESRCoV" || name == "esrcov" || name == "CoVS")
    return SamplingMethod::kESRCov;
  throw std::invalid_argument("unknown sampling method: " + name);
}

std::vector<double> sampling_probabilities(SamplingMethod method,
                                           std::span<const double> group_covs,
                                           double cov_floor) {
  GF_CHECK(!group_covs.empty(), "sampling_probabilities: no groups");
  GF_CHECK(cov_floor > 0.0, "sampling_probabilities: cov_floor must be > 0");
  const std::size_t n = group_covs.size();
  std::vector<double> p(n);

  if (method == SamplingMethod::kRandom) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n));
    return p;
  }

  // x_g = 1 / max(CoV, floor); the floor keeps perfectly-IID groups finite.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    GF_CHECK(group_covs[i] >= 0.0, "sampling_probabilities: negative CoV ",
             group_covs[i], " for group ", i);
    x[i] = 1.0 / std::max(group_covs[i], cov_floor);
  }

  double total = 0.0;
  switch (method) {
    case SamplingMethod::kRCov:
      for (std::size_t i = 0; i < n; ++i) total += (p[i] = x[i]);
      break;
    case SamplingMethod::kSRCov:
      for (std::size_t i = 0; i < n; ++i) total += (p[i] = x[i] * x[i]);
      break;
    case SamplingMethod::kESRCov: {
      // Max-shifted exponent: e^{x^2 - max} is exact after normalization
      // and never overflows.
      double mx = 0.0;
      for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, x[i] * x[i]);
      for (std::size_t i = 0; i < n; ++i)
        total += (p[i] = std::exp(x[i] * x[i] - mx));
      break;
    }
    case SamplingMethod::kRandom: break;  // handled above
  }
  GF_CHECK(total > 0.0 && std::isfinite(total),
           "sampling_probabilities: degenerate normalizer ", total);
  for (auto& v : p) v /= total;
  return p;
}

std::vector<std::size_t> sample_groups(std::span<const double> p,
                                       std::size_t s, runtime::Rng& rng) {
  GF_CHECK(s <= p.size(), "sample_groups: s = ", s, " exceeds ", p.size(),
           " groups");
#if GROUPFEL_DEBUG_CHECKS
  {
    double mass = 0.0;
    for (double v : p) {
      GF_DCHECK(v >= 0.0, "sample_groups: negative probability ", v);
      mass += v;
    }
    GF_DCHECK(std::abs(mass - 1.0) < 1e-6,
              "sample_groups: probabilities sum to ", mass, ", not 1");
  }
#endif
  std::vector<double> weights(p.begin(), p.end());
  std::vector<std::size_t> chosen;
  chosen.reserve(s);
  for (std::size_t draw = 0; draw < s; ++draw) {
    const std::size_t idx = rng.categorical(weights);
    chosen.push_back(idx);
    weights[idx] = 0.0;  // without replacement
  }
  return chosen;
}

}  // namespace groupfel::sampling
