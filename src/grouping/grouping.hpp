// Common grouping interface.
//
// A grouping is a partition of the clients of ONE edge server (identified by
// their row index in that edge's LabelMatrix) into mutually exclusive
// groups, per §3.1. Four algorithms are provided:
//   - CoVG  : the paper's CoV-Grouping greedy (Algorithm 2)
//   - RG    : random grouping (FedAvg/FedProx/SCAFFOLD baseline)
//   - CDG   : clustering-then-distribution, ported from OUEA [13]
//   - KLDG  : KL-divergence grouping, ported from SHARE [14]
#pragma once

#include <string>
#include <vector>

#include "data/label_matrix.hpp"
#include "grouping/cov.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"

namespace groupfel::grouping {

/// Groups are lists of client indices (rows of the edge's LabelMatrix).
using Grouping = std::vector<std::vector<std::size_t>>;

struct GroupingParams {
  std::size_t min_group_size = 5;  ///< MinGS anonymity constraint (Eq. 31)
  double max_cov = 1.0;            ///< MaxCoV soft constraint (CoVG only)
  std::size_t num_clusters = 0;    ///< CDG: #clusters (0 = num_labels)
  double kld_threshold = 0.01;     ///< KLDG: target KLD to global dist
  /// Streaming/partitioned greedy (CoVG and KLDG): 0 runs the classic
  /// whole-pool greedy, byte-identical to previous releases. A value w > 0
  /// shuffles the pool once and runs the greedy inside consecutive windows
  /// of w clients, cutting candidate scans from O(n^2 m) to O(n w m) so an
  /// edge with 10^6 clients forms groups in seconds. Within a window the
  /// algorithm is EXACTLY Algorithm 2; the paper's guarantees are local to
  /// a group, so windowing trades only cross-window candidate choice.
  std::size_t greedy_window = 0;
  /// Windowed CoVG/KLDG only: run the windows concurrently on the caller's
  /// ThreadPool. Each window derives its own counter-based RNG stream
  /// (rng.fork(window_index) — fork is const, so streams are independent of
  /// execution order) and groups are emitted in deterministic window order;
  /// the result is bit-identical for any pool size, including none. The
  /// default (false) threads one RNG through the windows serially,
  /// byte-identical to previous releases; the two modes draw different
  /// streams, so they produce different (statistically equivalent)
  /// groupings — quality parity is ctest-gated on the fig12 grid.
  bool parallel_windows = false;

  friend bool operator==(const GroupingParams&,
                         const GroupingParams&) = default;
};

/// The paper's Algorithm 2 (greedy CoV grouping). `pool` is used only by
/// the parallel-windows mode (see GroupingParams::parallel_windows).
[[nodiscard]] Grouping cov_grouping(const data::LabelMatrix& matrix,
                                    const GroupingParams& params,
                                    runtime::Rng& rng,
                                    runtime::ThreadPool* pool = nullptr);

/// Uniform random partition into groups of ~min_group_size clients.
[[nodiscard]] Grouping random_grouping(const data::LabelMatrix& matrix,
                                       const GroupingParams& params,
                                       runtime::Rng& rng,
                                       runtime::ThreadPool* pool = nullptr);

/// OUEA's clustering-then-distribution: k-means over normalized label
/// distributions, then members of each cluster are dealt round-robin across
/// groups so each group mixes all client types. `pool` parallelizes the
/// feature build, the k-means inner loops, and the cluster bucketing;
/// bit-identical for any pool size.
[[nodiscard]] Grouping cdg_grouping(const data::LabelMatrix& matrix,
                                    const GroupingParams& params,
                                    runtime::Rng& rng,
                                    runtime::ThreadPool* pool = nullptr);

/// SHARE's KLD-based greedy: like Algorithm 2 but the criterion is the
/// Kullback–Leibler divergence between the group's label distribution and
/// the global one, recomputed from scratch per candidate (hence the
/// O(|K|^4 |Y|) complexity the paper measures in Fig. 5).
[[nodiscard]] Grouping kldg_grouping(const data::LabelMatrix& matrix,
                                     const GroupingParams& params,
                                     runtime::Rng& rng,
                                     runtime::ThreadPool* pool = nullptr);

// ---- Registry (grouping/registry.cpp) ----

enum class GroupingMethod { kRandom, kCdg, kKldg, kCov };

[[nodiscard]] Grouping form_groups(GroupingMethod method,
                                   const data::LabelMatrix& matrix,
                                   const GroupingParams& params,
                                   runtime::Rng& rng,
                                   runtime::ThreadPool* pool = nullptr);

[[nodiscard]] std::string to_string(GroupingMethod method);
[[nodiscard]] GroupingMethod grouping_method_from_string(const std::string& name);

/// Validates that `grouping` is a partition of [0, matrix.num_clients());
/// throws std::logic_error otherwise. Called by form_groups in debug paths
/// and by tests.
void validate_partition(const Grouping& grouping, std::size_t num_clients);

/// Summary statistics used by Table 1 and Fig. 6.
struct GroupingSummary {
  std::size_t num_groups = 0;
  std::size_t min_size = 0;
  std::size_t max_size = 0;
  double avg_size = 0.0;
  double avg_cov = 0.0;   ///< unweighted mean of group CoVs
  double max_group_cov = 0.0;
};

[[nodiscard]] GroupingSummary summarize(const data::LabelMatrix& matrix,
                                        const Grouping& grouping);

}  // namespace groupfel::grouping
