// Coefficient-of-variation (CoV) grouping criterion from §5.1.
//
// For a group g with per-label sample counts c_j (j = 1..m) and total n_g,
// the canonical CoV is sigma/mu where mu = n_g/m and
// sigma = sqrt(sum_j (n_g/m - c_j)^2 / m).
//
// The paper's Eq. (27) displays sigma/mu but writes the right-hand side with
// an n_g denominator, which is scale-DEPENDENT (a single-label group's value
// would grow with sqrt(n_g)) and contradicts the paper's own motivation for
// preferring CoV over variance. We therefore use the canonical sigma/mu as
// cov() — its range [0, sqrt(m-1)] matches Fig. 6's axis and Table 1's
// values — and keep the literal formula as cov_paper_literal() for study.
// See DESIGN.md §3.
#pragma once

#include <span>
#include <vector>

#include "data/label_matrix.hpp"

namespace groupfel::grouping {

/// Canonical CoV = sigma/mu of per-label counts. Returns 0 for an empty
/// group (no data, no skew to measure). Range: [0, sqrt(m-1)].
[[nodiscard]] double cov(std::span<const std::size_t> label_counts);

/// The paper's literal Eq. (27) right-hand side (scale-dependent variant).
[[nodiscard]] double cov_paper_literal(std::span<const std::size_t> label_counts);

/// Sums the label-matrix rows of `clients` into one group count vector.
[[nodiscard]] std::vector<std::size_t> group_label_counts(
    const data::LabelMatrix& matrix, std::span<const std::size_t> clients);

/// Convenience: CoV of a set of clients under `matrix`.
[[nodiscard]] double group_cov(const data::LabelMatrix& matrix,
                               std::span<const std::size_t> clients);

/// Incremental CoV evaluation for greedy grouping: maintains the group's
/// running label counts so "CoV if client c joined" is O(m) instead of
/// O(|g| * m).
class IncrementalCov {
 public:
  explicit IncrementalCov(std::size_t num_labels);

  void add(std::span<const std::size_t> client_counts);
  void remove(std::span<const std::size_t> client_counts);

  /// CoV of the current group.
  [[nodiscard]] double value() const;

  /// CoV if `client_counts` were added (group unchanged).
  [[nodiscard]] double value_with(std::span<const std::size_t> client_counts) const;

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::span<const std::size_t> counts() const noexcept {
    return counts_;
  }

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace groupfel::grouping
