// k-means over client label distributions — the clustering stage of CDG
// (OUEA's grouping baseline). Built from scratch: k-means++ seeding plus
// Lloyd iterations with an empty-cluster reseed rule.
#pragma once

#include <span>
#include <vector>

#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"

namespace groupfel::grouping {

struct KMeansResult {
  std::vector<std::size_t> assignment;            ///< point -> cluster
  std::vector<std::vector<double>> centroids;     ///< k x dim
  double inertia = 0.0;                           ///< sum of squared dists
  std::size_t iterations = 0;
};

/// Clusters n points of dimension `dim`, stored row-major in `flat`
/// (flat[i * dim + j]), into k clusters. `max_iters` bounds Lloyd
/// iterations; convergence is detected when no assignment changes. The flat
/// layout is the primary entry point: a million-point input is one
/// allocation and streams through the distance scans in cache order.
///
/// `pool` shards the distance scans, the assignment step, and the centroid
/// accumulation over fixed-size point blocks whose partial results are
/// combined in deterministic block order — the result is bit-identical for
/// any pool size including nullptr (serial). Inputs up to one block (4096
/// points) reproduce the historical straight-line accumulation exactly.
[[nodiscard]] KMeansResult kmeans(std::span<const double> flat,
                                  std::size_t dim, std::size_t k,
                                  runtime::Rng& rng,
                                  std::size_t max_iters = 100,
                                  runtime::ThreadPool* pool = nullptr);

/// Nested-row convenience wrapper (copies into the flat layout).
[[nodiscard]] KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                                  std::size_t k, runtime::Rng& rng,
                                  std::size_t max_iters = 100,
                                  runtime::ThreadPool* pool = nullptr);

}  // namespace groupfel::grouping
