// k-means over client label distributions — the clustering stage of CDG
// (OUEA's grouping baseline). Built from scratch: k-means++ seeding plus
// Lloyd iterations with an empty-cluster reseed rule.
#pragma once

#include <vector>

#include "runtime/rng.hpp"

namespace groupfel::grouping {

struct KMeansResult {
  std::vector<std::size_t> assignment;            ///< point -> cluster
  std::vector<std::vector<double>> centroids;     ///< k x dim
  double inertia = 0.0;                           ///< sum of squared dists
  std::size_t iterations = 0;
};

/// Clusters `points` (n x dim) into k clusters. `max_iters` bounds Lloyd
/// iterations; convergence is detected when no assignment changes.
[[nodiscard]] KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                                  std::size_t k, runtime::Rng& rng,
                                  std::size_t max_iters = 100);

}  // namespace groupfel::grouping
