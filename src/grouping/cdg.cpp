// CDG — clustering-then-distribution grouping, ported from OUEA [13].
//
// OUEA first clusters clients with similar label distributions, then deals
// the members of each cluster across groups so that every group receives a
// mix of client types and its combined distribution tends toward IID.
// OUEA does not control group size; as the paper does in §7, we port it to
// group formation by targeting floor(N / MinGS) groups.
//
// The feature build, the k-means inner loops, and the cluster bucketing all
// shard over the caller's ThreadPool; the bucketing is a two-phase counting
// sort over fixed point blocks whose per-(block, cluster) offsets are
// precomputed, so members land in ascending-index order within each cluster
// — exactly the order the historical push_back gather produced. The result
// is byte-identical for any pool size including nullptr (serial).
#include <algorithm>
#include <functional>

#include "grouping/grouping.hpp"
#include "grouping/kmeans.hpp"

namespace groupfel::grouping {

namespace {
constexpr std::size_t kClientBlock = 4096;
}  // namespace

Grouping cdg_grouping(const data::LabelMatrix& matrix,
                      const GroupingParams& params, runtime::Rng& rng,
                      runtime::ThreadPool* pool) {
  const std::size_t n = matrix.num_clients();
  const std::size_t gs = std::max<std::size_t>(1, params.min_group_size);
  const std::size_t num_groups = std::max<std::size_t>(1, n / gs);
  const std::size_t blocks = (n + kClientBlock - 1) / kClientBlock;
  const auto for_each_block = [&](const std::function<void(std::size_t)>& body) {
    if (pool != nullptr && pool->size() > 1 && blocks > 1) {
      pool->parallel_for(blocks, body);
    } else {
      for (std::size_t bi = 0; bi < blocks; ++bi) body(bi);
    }
  };

  // Normalized label distributions as clustering features, in the flat
  // row-major layout: one allocation for the whole federation instead of a
  // heap vector per client. Rows are disjoint, so blocking is exact.
  const std::size_t m = matrix.num_labels();
  std::vector<double> points(n * m);
  for_each_block([&](std::size_t bi) {
    const std::size_t i0 = bi * kClientBlock;
    const std::size_t i1 = std::min(n, i0 + kClientBlock);
    for (std::size_t i = i0; i < i1; ++i) {
      const auto row = matrix.row(i);
      const double total = static_cast<double>(matrix.client_total(i));
      for (std::size_t j = 0; j < m; ++j)
        points[i * m + j] =
            total > 0 ? static_cast<double>(row[j]) / total : 0.0;
    }
  });

  const std::size_t k = params.num_clusters > 0 ? params.num_clusters : m;
  const KMeansResult km = kmeans(points, m, k, rng, 100, pool);
  const std::size_t kk = km.centroids.size();

  // Bucket members by cluster into ONE flat array via a two-phase counting
  // sort. Phase 1: per-(block, cluster) counts. Phase 2: exact write
  // offsets per (block, cluster), then a parallel scatter — each block
  // writes its members in ascending index order at its precomputed offset,
  // so cluster spans hold members in ascending order regardless of pool
  // size.
  std::vector<std::vector<std::size_t>> block_counts(
      blocks, std::vector<std::size_t>(kk, 0));
  for_each_block([&](std::size_t bi) {
    const std::size_t i0 = bi * kClientBlock;
    const std::size_t i1 = std::min(n, i0 + kClientBlock);
    auto& counts = block_counts[bi];
    for (std::size_t i = i0; i < i1; ++i) ++counts[km.assignment[i]];
  });
  // cluster_offsets[c]: start of cluster c's span; write_offsets[bi][c]:
  // where block bi's members of cluster c go.
  std::vector<std::size_t> cluster_offsets(kk + 1, 0);
  std::vector<std::vector<std::size_t>> write_offsets(
      blocks, std::vector<std::size_t>(kk, 0));
  for (std::size_t c = 0; c < kk; ++c) {
    std::size_t cursor = cluster_offsets[c];
    for (std::size_t bi = 0; bi < blocks; ++bi) {
      write_offsets[bi][c] = cursor;
      cursor += block_counts[bi][c];
    }
    cluster_offsets[c + 1] = cursor;
  }
  std::vector<std::size_t> bucketed(n);
  for_each_block([&](std::size_t bi) {
    const std::size_t i0 = bi * kClientBlock;
    const std::size_t i1 = std::min(n, i0 + kClientBlock);
    auto& cursors = write_offsets[bi];
    for (std::size_t i = i0; i < i1; ++i)
      bucketed[cursors[km.assignment[i]]++] = i;
  });

  // Shuffle within each cluster so the deal is unbiased. One RNG threads
  // the clusters in index order — the same draw sequence as the historical
  // per-cluster vector shuffles, hence byte-identical groups.
  for (std::size_t c = 0; c < kk; ++c) {
    rng.shuffle(std::span<std::size_t>(
        bucketed.data() + cluster_offsets[c],
        cluster_offsets[c + 1] - cluster_offsets[c]));
  }

  // Deal round-robin: consecutive members of the same cluster land in
  // different groups, so each group samples all client types.
  Grouping groups(num_groups);
  for (std::size_t cursor = 0; cursor < n; ++cursor)
    groups[cursor % num_groups].push_back(bucketed[cursor]);

  // Drop empty groups (possible when n < num_groups).
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const auto& g) { return g.empty(); }),
               groups.end());
  return groups;
}

}  // namespace groupfel::grouping
