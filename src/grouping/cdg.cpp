// CDG — clustering-then-distribution grouping, ported from OUEA [13].
//
// OUEA first clusters clients with similar label distributions, then deals
// the members of each cluster across groups so that every group receives a
// mix of client types and its combined distribution tends toward IID.
// OUEA does not control group size; as the paper does in §7, we port it to
// group formation by targeting floor(N / MinGS) groups.
#include <algorithm>

#include "grouping/grouping.hpp"
#include "grouping/kmeans.hpp"

namespace groupfel::grouping {

Grouping cdg_grouping(const data::LabelMatrix& matrix,
                      const GroupingParams& params, runtime::Rng& rng) {
  const std::size_t n = matrix.num_clients();
  const std::size_t gs = std::max<std::size_t>(1, params.min_group_size);
  const std::size_t num_groups = std::max<std::size_t>(1, n / gs);

  // Normalized label distributions as clustering features, in the flat
  // row-major layout: one allocation for the whole federation instead of a
  // heap vector per client.
  const std::size_t m = matrix.num_labels();
  std::vector<double> points(n * m);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = matrix.row(i);
    const double total = static_cast<double>(matrix.client_total(i));
    for (std::size_t j = 0; j < m; ++j)
      points[i * m + j] = total > 0 ? static_cast<double>(row[j]) / total : 0.0;
  }

  const std::size_t k = params.num_clusters > 0 ? params.num_clusters : m;
  const KMeansResult km = kmeans(points, m, k, rng);

  // Gather clusters, shuffle within each so the deal is unbiased.
  std::vector<std::vector<std::size_t>> clusters(km.centroids.size());
  for (std::size_t i = 0; i < n; ++i) clusters[km.assignment[i]].push_back(i);
  for (auto& c : clusters) rng.shuffle(c);

  // Deal round-robin: consecutive members of the same cluster land in
  // different groups, so each group samples all client types.
  Grouping groups(num_groups);
  std::size_t cursor = 0;
  for (const auto& cluster : clusters)
    for (auto client : cluster) {
      groups[cursor % num_groups].push_back(client);
      ++cursor;
    }

  // Drop empty groups (possible when n < num_groups).
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const auto& g) { return g.empty(); }),
               groups.end());
  return groups;
}

}  // namespace groupfel::grouping
