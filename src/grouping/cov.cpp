#include "grouping/cov.hpp"

#include <cmath>
#include <stdexcept>

namespace groupfel::grouping {

namespace {
/// Shared kernel: sum of squared deviations from the balanced count n_g/m.
double squared_deviation_sum(std::span<const std::size_t> counts,
                             std::size_t total) {
  const double mu =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double s = 0.0;
  for (auto c : counts) {
    const double d = mu - static_cast<double>(c);
    s += d * d;
  }
  return s;
}
}  // namespace

double cov(std::span<const std::size_t> label_counts) {
  if (label_counts.empty()) throw std::invalid_argument("cov: no labels");
  std::size_t total = 0;
  for (auto c : label_counts) total += c;
  if (total == 0) return 0.0;
  const double m = static_cast<double>(label_counts.size());
  const double sigma =
      std::sqrt(squared_deviation_sum(label_counts, total) / m);
  const double mu = static_cast<double>(total) / m;
  return sigma / mu;
}

double cov_paper_literal(std::span<const std::size_t> label_counts) {
  if (label_counts.empty())
    throw std::invalid_argument("cov_paper_literal: no labels");
  std::size_t total = 0;
  for (auto c : label_counts) total += c;
  if (total == 0) return 0.0;
  return std::sqrt(squared_deviation_sum(label_counts, total) /
                   static_cast<double>(total));
}

std::vector<std::size_t> group_label_counts(
    const data::LabelMatrix& matrix, std::span<const std::size_t> clients) {
  std::vector<std::size_t> counts(matrix.num_labels(), 0);
  for (auto c : clients) {
    const auto row = matrix.row(c);
    for (std::size_t j = 0; j < counts.size(); ++j) counts[j] += row[j];
  }
  return counts;
}

double group_cov(const data::LabelMatrix& matrix,
                 std::span<const std::size_t> clients) {
  return cov(group_label_counts(matrix, clients));
}

IncrementalCov::IncrementalCov(std::size_t num_labels)
    : counts_(num_labels, 0) {
  if (num_labels == 0) throw std::invalid_argument("IncrementalCov: no labels");
}

void IncrementalCov::add(std::span<const std::size_t> client_counts) {
  if (client_counts.size() != counts_.size())
    throw std::invalid_argument("IncrementalCov::add: label count mismatch");
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    counts_[j] += client_counts[j];
    total_ += client_counts[j];
  }
}

void IncrementalCov::remove(std::span<const std::size_t> client_counts) {
  if (client_counts.size() != counts_.size())
    throw std::invalid_argument("IncrementalCov::remove: label count mismatch");
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    if (counts_[j] < client_counts[j])
      throw std::logic_error("IncrementalCov::remove: underflow");
    counts_[j] -= client_counts[j];
    total_ -= client_counts[j];
  }
}

double IncrementalCov::value() const { return cov(counts_); }

double IncrementalCov::value_with(
    std::span<const std::size_t> client_counts) const {
  if (client_counts.size() != counts_.size())
    throw std::invalid_argument("IncrementalCov::value_with: size mismatch");
  const double m = static_cast<double>(counts_.size());
  double combined_total = 0.0;
  double s = 0.0;
  // Two passes over m entries: total first, then deviations.
  std::size_t total = 0;
  for (std::size_t j = 0; j < counts_.size(); ++j)
    total += counts_[j] + client_counts[j];
  if (total == 0) return 0.0;
  combined_total = static_cast<double>(total);
  const double mu = combined_total / m;
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    const double d = mu - static_cast<double>(counts_[j] + client_counts[j]);
    s += d * d;
  }
  return std::sqrt(s / m) / mu;
}

}  // namespace groupfel::grouping
