#include <stdexcept>

#include "grouping/grouping.hpp"
#include "util/check.hpp"

namespace groupfel::grouping {

Grouping form_groups(GroupingMethod method, const data::LabelMatrix& matrix,
                     const GroupingParams& params, runtime::Rng& rng,
                     runtime::ThreadPool* pool) {
  GF_CHECK(params.min_group_size >= 1,
           "form_groups: min_group_size must be >= 1");
  GF_CHECK(matrix.num_clients() > 0, "form_groups: no clients");
  switch (method) {
    case GroupingMethod::kRandom:
      return random_grouping(matrix, params, rng, pool);
    case GroupingMethod::kCdg: return cdg_grouping(matrix, params, rng, pool);
    case GroupingMethod::kKldg:
      return kldg_grouping(matrix, params, rng, pool);
    case GroupingMethod::kCov: return cov_grouping(matrix, params, rng, pool);
  }
  throw std::invalid_argument("form_groups: unknown method");
}

std::string to_string(GroupingMethod method) {
  switch (method) {
    case GroupingMethod::kRandom: return "RG";
    case GroupingMethod::kCdg: return "CDG";
    case GroupingMethod::kKldg: return "KLDG";
    case GroupingMethod::kCov: return "CoVG";
  }
  return "?";
}

GroupingMethod grouping_method_from_string(const std::string& name) {
  if (name == "RG" || name == "random") return GroupingMethod::kRandom;
  if (name == "CDG" || name == "cdg") return GroupingMethod::kCdg;
  if (name == "KLDG" || name == "kldg") return GroupingMethod::kKldg;
  if (name == "CoVG" || name == "cov") return GroupingMethod::kCov;
  throw std::invalid_argument("unknown grouping method: " + name);
}

void validate_partition(const Grouping& grouping, std::size_t num_clients) {
  std::vector<bool> seen(num_clients, false);
  std::size_t total = 0;
  for (std::size_t gi = 0; gi < grouping.size(); ++gi) {
    const auto& g = grouping[gi];
    GF_CHECK(!g.empty(), "validate_partition: group ", gi, " is empty");
    for (auto c : g) {
      GF_CHECK(c < num_clients, "validate_partition: client ", c,
               " out of range [0, ", num_clients, ")");
      GF_CHECK(!seen[c], "validate_partition: client ", c,
               " appears in two groups");
      seen[c] = true;
      ++total;
    }
  }
  GF_CHECK_EQ(total, num_clients,
              "validate_partition: not all clients grouped");
}

GroupingSummary summarize(const data::LabelMatrix& matrix,
                          const Grouping& grouping) {
  GroupingSummary s;
  s.num_groups = grouping.size();
  if (grouping.empty()) return s;
  s.min_size = grouping[0].size();
  double size_sum = 0.0, cov_sum = 0.0;
  for (const auto& g : grouping) {
    s.min_size = std::min(s.min_size, g.size());
    s.max_size = std::max(s.max_size, g.size());
    size_sum += static_cast<double>(g.size());
    const double c = group_cov(matrix, g);
    cov_sum += c;
    s.max_group_cov = std::max(s.max_group_cov, c);
  }
  s.avg_size = size_sum / static_cast<double>(grouping.size());
  s.avg_cov = cov_sum / static_cast<double>(grouping.size());
  return s;
}

}  // namespace groupfel::grouping
