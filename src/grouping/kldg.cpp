// KLDG — KL-divergence grouping, ported from SHARE [14].
//
// SHARE shapes the data distribution at each aggregator by minimizing the
// Kullback–Leibler divergence between the aggregator's combined label
// distribution and the global one. Ported to group formation: greedy like
// Algorithm 2, but the criterion is KLD(group || global) and — true to the
// original — the group distribution is recomputed from scratch for every
// candidate evaluation. That yields the O(|K|^4 |Y|) complexity (plus the
// log() calls) the paper measures in Fig. 5.
//
// params.greedy_window > 0 runs the same greedy inside windows of a
// once-shuffled pool (see cov_grouping.cpp); the per-candidate recompute is
// preserved, so windowed KLDG is O(n w^2 m) instead of O(n^3 m) — still the
// most expensive method, as in the paper. params.parallel_windows runs the
// windows concurrently on per-window RNG streams, bit-identical for any
// ThreadPool size.
#include <cmath>
#include <limits>
#include <numeric>

#include "grouping/candidate_pool.hpp"
#include "grouping/grouping.hpp"
#include "util/stats.hpp"

namespace groupfel::grouping {

namespace {
/// KLD(group distribution || global distribution), recomputed from scratch
/// over the member rows (intentionally not incremental; see header comment).
/// `counts` is caller-owned scratch, resized/overwritten here so candidate
/// scans do not allocate per evaluation.
double group_kld(const data::LabelMatrix& matrix,
                 const std::vector<std::size_t>& group,
                 std::size_t extra_client,
                 const std::vector<double>& global_dist,
                 std::vector<double>& counts) {
  counts.assign(matrix.num_labels(), 0.0);
  for (auto c : group) {
    const auto row = matrix.row(c);
    for (std::size_t j = 0; j < counts.size(); ++j)
      counts[j] += static_cast<double>(row[j]);
  }
  const auto row = matrix.row(extra_client);
  for (std::size_t j = 0; j < counts.size(); ++j)
    counts[j] += static_cast<double>(row[j]);
  return util::kl_divergence(counts, global_dist);
}

void greedy_over_pool(const data::LabelMatrix& matrix,
                      const GroupingParams& params, runtime::Rng& rng,
                      const std::vector<double>& global_dist,
                      std::vector<std::size_t> pool_items, Grouping& groups) {
  std::vector<double> scratch;
  CandidatePool pool(std::move(pool_items));
  while (!pool.empty()) {
    const std::size_t first_slot =
        pool.nth_live_slot(rng.next_below(pool.size()));
    std::vector<std::size_t> group{pool.client(first_slot)};
    pool.remove(first_slot);

    auto current_kld = [&] {
      scratch.assign(matrix.num_labels(), 0.0);
      for (auto c : group) {
        const auto row = matrix.row(c);
        for (std::size_t j = 0; j < scratch.size(); ++j)
          scratch[j] += static_cast<double>(row[j]);
      }
      return util::kl_divergence(scratch, global_dist);
    };

    while ((current_kld() > params.kld_threshold ||
            group.size() < params.min_group_size) &&
           !pool.empty()) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_slot = 0;
      pool.for_each([&](std::size_t slot, std::size_t client) {
        const double kld =
            group_kld(matrix, group, client, global_dist, scratch);
        if (kld < best) {
          best = kld;
          best_slot = slot;
        }
      });
      if (best < current_kld() || group.size() < params.min_group_size) {
        group.push_back(pool.client(best_slot));
        pool.remove(best_slot);
      } else {
        break;
      }
    }
    groups.push_back(std::move(group));
  }
}
}  // namespace

Grouping kldg_grouping(const data::LabelMatrix& matrix,
                       const GroupingParams& params, runtime::Rng& rng,
                       runtime::ThreadPool* pool) {
  const std::size_t n = matrix.num_clients();
  const auto global_counts = matrix.global_counts();
  std::vector<double> global_dist(global_counts.size());
  for (std::size_t j = 0; j < global_counts.size(); ++j)
    global_dist[j] = static_cast<double>(global_counts[j]);

  Grouping groups;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  const std::size_t window = params.greedy_window;
  if (window == 0 || n <= window) {
    greedy_over_pool(matrix, params, rng, global_dist, std::move(order),
                     groups);
    return groups;
  }

  rng.shuffle(order);
  const std::size_t num_windows = (n + window - 1) / window;
  const auto window_items = [&](std::size_t w) {
    const std::size_t start = w * window;
    const std::size_t end = std::min(n, start + window);
    return std::vector<std::size_t>(
        order.begin() + static_cast<std::ptrdiff_t>(start),
        order.begin() + static_cast<std::ptrdiff_t>(end));
  };

  if (!params.parallel_windows) {
    for (std::size_t w = 0; w < num_windows; ++w)
      greedy_over_pool(matrix, params, rng, global_dist, window_items(w),
                       groups);
    return groups;
  }

  std::vector<Grouping> per_window(num_windows);
  const auto run_window = [&](std::size_t w) {
    runtime::Rng wrng = rng.fork(w);
    greedy_over_pool(matrix, params, wrng, global_dist, window_items(w),
                     per_window[w]);
  };
  if (pool != nullptr && pool->size() > 1 && num_windows > 1) {
    pool->parallel_for(num_windows, run_window);
  } else {
    for (std::size_t w = 0; w < num_windows; ++w) run_window(w);
  }
  for (auto& wg : per_window)
    for (auto& g : wg) groups.push_back(std::move(g));
  return groups;
}

}  // namespace groupfel::grouping
