#include "grouping/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace groupfel::grouping {

namespace {
double sq_dist(const double* a, const double* b, std::size_t dim) {
  double s = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}
}  // namespace

KMeansResult kmeans(std::span<const double> flat, std::size_t dim,
                    std::size_t k, runtime::Rng& rng, std::size_t max_iters) {
  if (dim == 0) throw std::invalid_argument("kmeans: zero dimension");
  if (flat.size() % dim != 0)
    throw std::invalid_argument("kmeans: flat size not row-divisible");
  const std::size_t n = flat.size() / dim;
  if (n == 0) throw std::invalid_argument("kmeans: no points");
  if (k == 0) throw std::invalid_argument("kmeans: k == 0");
  k = std::min(k, n);
  const auto point = [&](std::size_t i) { return flat.data() + i * dim; };

  KMeansResult res;
  res.centroids.reserve(k);
  const auto push_centroid = [&](std::size_t i) {
    res.centroids.emplace_back(point(i), point(i) + dim);
  };

  // k-means++ seeding.
  push_centroid(rng.next_below(n));
  std::vector<double> d2(n, 0.0);
  while (res.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : res.centroids)
        best = std::min(best, sq_dist(point(i), c.data(), dim));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All remaining points coincide with centroids; pick arbitrarily.
      push_centroid(rng.next_below(n));
      continue;
    }
    push_centroid(rng.categorical(d2));
  }

  res.assignment.assign(n, 0);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    ++res.iterations;
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < res.centroids.size(); ++c) {
        const double d = sq_dist(point(i), res.centroids[c].data(), dim);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (res.assignment[i] != best_c) {
        res.assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Recompute centroids; empty clusters are reseeded to a random point.
    std::vector<std::vector<double>> sums(res.centroids.size(),
                                          std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(res.centroids.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[res.assignment[i]];
      const double* p = point(i);
      for (std::size_t d = 0; d < dim; ++d) sums[res.assignment[i]][d] += p[d];
    }
    for (std::size_t c = 0; c < res.centroids.size(); ++c) {
      if (counts[c] == 0) {
        const double* p = point(rng.next_below(n));
        res.centroids[c].assign(p, p + dim);
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d)
        res.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
  }

  res.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    res.inertia +=
        sq_dist(point(i), res.centroids[res.assignment[i]].data(), dim);
  return res;
}

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, runtime::Rng& rng, std::size_t max_iters) {
  if (points.empty()) throw std::invalid_argument("kmeans: no points");
  const std::size_t dim = points[0].size();
  std::vector<double> flat;
  flat.reserve(points.size() * dim);
  for (const auto& p : points) {
    if (p.size() != dim) throw std::invalid_argument("kmeans: ragged points");
    flat.insert(flat.end(), p.begin(), p.end());
  }
  return kmeans(flat, dim, k, rng, max_iters);
}

}  // namespace groupfel::grouping
