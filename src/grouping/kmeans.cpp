#include "grouping/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace groupfel::grouping {

namespace {

double sq_dist(const double* a, const double* b, std::size_t dim) {
  double s = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// Point-block granularity for every parallel stage. Fixed by n alone, so
/// the work decomposition — and therefore every blocked reduction below —
/// never depends on the pool size. One block reproduces the historical
/// straight-line accumulation order exactly, which keeps small inputs
/// (every existing test) byte-identical to the serial implementation.
constexpr std::size_t kPointBlock = 4096;

/// Runs body(block_index) over ceil(n / kPointBlock) blocks, parallel when
/// a pool with >1 worker is supplied.
template <typename Body>
void for_each_block(std::size_t n, runtime::ThreadPool* pool,
                    const Body& body) {
  const std::size_t blocks = (n + kPointBlock - 1) / kPointBlock;
  if (pool != nullptr && pool->size() > 1 && blocks > 1) {
    pool->parallel_for(blocks, body);
  } else {
    for (std::size_t bi = 0; bi < blocks; ++bi) body(bi);
  }
}

inline std::size_t num_blocks(std::size_t n) {
  return (n + kPointBlock - 1) / kPointBlock;
}

}  // namespace

KMeansResult kmeans(std::span<const double> flat, std::size_t dim,
                    std::size_t k, runtime::Rng& rng, std::size_t max_iters,
                    runtime::ThreadPool* pool) {
  if (dim == 0) throw std::invalid_argument("kmeans: zero dimension");
  if (flat.size() % dim != 0)
    throw std::invalid_argument("kmeans: flat size not row-divisible");
  const std::size_t n = flat.size() / dim;
  if (n == 0) throw std::invalid_argument("kmeans: no points");
  if (k == 0) throw std::invalid_argument("kmeans: k == 0");
  k = std::min(k, n);
  const auto point = [&](std::size_t i) { return flat.data() + i * dim; };
  const std::size_t blocks = num_blocks(n);

  KMeansResult res;
  res.centroids.reserve(k);
  const auto push_centroid = [&](std::size_t i) {
    res.centroids.emplace_back(point(i), point(i) + dim);
  };

  // k-means++ seeding. d2 writes are disjoint per point; the normalizer is
  // a fixed-shape blocked sum combined in block order.
  push_centroid(rng.next_below(n));
  std::vector<double> d2(n, 0.0);
  std::vector<double> block_sums(blocks, 0.0);
  while (res.centroids.size() < k) {
    for_each_block(n, pool, [&](std::size_t bi) {
      const std::size_t i0 = bi * kPointBlock;
      const std::size_t i1 = std::min(n, i0 + kPointBlock);
      double local = 0.0;
      for (std::size_t i = i0; i < i1; ++i) {
        double best = std::numeric_limits<double>::infinity();
        for (const auto& c : res.centroids)
          best = std::min(best, sq_dist(point(i), c.data(), dim));
        d2[i] = best;
        local += best;
      }
      block_sums[bi] = local;
    });
    double total = 0.0;
    for (std::size_t bi = 0; bi < blocks; ++bi) total += block_sums[bi];
    if (total <= 0.0) {
      // All remaining points coincide with centroids; pick arbitrarily.
      push_centroid(rng.next_below(n));
      continue;
    }
    push_centroid(rng.categorical(d2));
  }

  const std::size_t kk = res.centroids.size();
  res.assignment.assign(n, 0);
  // Per-block partials for the centroid recompute: each block accumulates
  // its own k x dim sums and counts, then partials merge in block order —
  // the deterministic fixed-shape tree reduction pattern.
  std::vector<std::vector<double>> block_csums(
      blocks, std::vector<double>(kk * dim, 0.0));
  std::vector<std::vector<std::size_t>> block_counts(
      blocks, std::vector<std::size_t>(kk, 0));
  std::vector<std::uint8_t> block_changed(blocks, 0);

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    ++res.iterations;
    for_each_block(n, pool, [&](std::size_t bi) {
      const std::size_t i0 = bi * kPointBlock;
      const std::size_t i1 = std::min(n, i0 + kPointBlock);
      std::uint8_t local_changed = 0;
      auto& csums = block_csums[bi];
      auto& counts = block_counts[bi];
      std::fill(csums.begin(), csums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), std::size_t{0});
      for (std::size_t i = i0; i < i1; ++i) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_c = 0;
        for (std::size_t c = 0; c < kk; ++c) {
          const double d = sq_dist(point(i), res.centroids[c].data(), dim);
          if (d < best) {
            best = d;
            best_c = c;
          }
        }
        if (res.assignment[i] != best_c) {
          res.assignment[i] = best_c;
          local_changed = 1;
        }
        ++counts[best_c];
        const double* p = point(i);
        for (std::size_t d = 0; d < dim; ++d) csums[best_c * dim + d] += p[d];
      }
      block_changed[bi] = local_changed;
    });
    bool changed = false;
    for (std::size_t bi = 0; bi < blocks; ++bi)
      changed = changed || block_changed[bi] != 0;
    if (!changed && iter > 0) break;

    // Merge per-block partials in block order; empty clusters are reseeded
    // to a random point.
    std::vector<std::vector<double>> sums(kk, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(kk, 0);
    for (std::size_t bi = 0; bi < blocks; ++bi) {
      for (std::size_t c = 0; c < kk; ++c) {
        counts[c] += block_counts[bi][c];
        for (std::size_t d = 0; d < dim; ++d)
          sums[c][d] += block_csums[bi][c * dim + d];
      }
    }
    for (std::size_t c = 0; c < kk; ++c) {
      if (counts[c] == 0) {
        const double* p = point(rng.next_below(n));
        res.centroids[c].assign(p, p + dim);
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d)
        res.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
  }

  for_each_block(n, pool, [&](std::size_t bi) {
    const std::size_t i0 = bi * kPointBlock;
    const std::size_t i1 = std::min(n, i0 + kPointBlock);
    double local = 0.0;
    for (std::size_t i = i0; i < i1; ++i)
      local += sq_dist(point(i), res.centroids[res.assignment[i]].data(), dim);
    block_sums[bi] = local;
  });
  res.inertia = 0.0;
  for (std::size_t bi = 0; bi < blocks; ++bi) res.inertia += block_sums[bi];
  return res;
}

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, runtime::Rng& rng, std::size_t max_iters,
                    runtime::ThreadPool* pool) {
  if (points.empty()) throw std::invalid_argument("kmeans: no points");
  const std::size_t dim = points[0].size();
  std::vector<double> flat;
  flat.reserve(points.size() * dim);
  for (const auto& p : points) {
    if (p.size() != dim) throw std::invalid_argument("kmeans: ragged points");
    flat.insert(flat.end(), p.begin(), p.end());
  }
  return kmeans(flat, dim, k, rng, max_iters, pool);
}

}  // namespace groupfel::grouping
