// Order-preserving candidate pool for the Algorithm 2 greedy inner loop
// (shared by cov_grouping.cpp and kldg.cpp).
//
// The greedy admits one client per inner iteration; with a plain vector that
// admit is an O(n) `erase`, adding a quadratic term per window on top of the
// candidate scans. This pool replaces erase with a tombstone mark plus
// amortized compaction (rebuild when over half the slots are dead), so a
// window of n candidates pays O(n) total removal cost.
//
// Byte-identity contract: `erase` preserves the relative order of the
// surviving candidates, and so does skip-tombstones-then-compact — live
// candidates are always visited in exactly the order the erase-based pool
// would produce. The greedy's argmin keeps the FIRST minimum it sees, so
// identical visit order means identical tie-breaking and therefore
// byte-identical groupings (ctest-gated against a reference copy of the
// erase-based greedy in tests/parallel_control_plane_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace groupfel::grouping {

class CandidatePool {
 public:
  explicit CandidatePool(std::vector<std::size_t> items)
      : items_(std::move(items)),
        dead_(items_.size(), 0),
        live_(items_.size()) {}

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live candidates (what `pool.size()` was for the erase pool).
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Client id held in `slot`. Slots are only valid until the next remove().
  [[nodiscard]] std::size_t client(std::size_t slot) const {
    return items_[slot];
  }

  /// Visits every live candidate in order: f(slot, client). This is the
  /// candidate scan of Algorithm 2 line 5; the visit order matches the
  /// erase-based pool's iteration order exactly.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t s = 0; s < items_.size(); ++s)
      if (dead_[s] == 0) f(s, items_[s]);
  }

  /// Slot of the pos-th live candidate (the random group opener's
  /// `pool[first_pos]`). O(slots), but called once per group — the same
  /// order as one candidate scan.
  [[nodiscard]] std::size_t nth_live_slot(std::size_t pos) const {
    GF_CHECK(pos < live_, "CandidatePool: nth_live_slot(", pos,
             ") with only ", live_, " live candidates");
    std::size_t seen = 0;
    for (std::size_t s = 0; s < items_.size(); ++s) {
      if (dead_[s] != 0) continue;
      if (seen == pos) return s;
      ++seen;
    }
    GF_CHECK(false, "CandidatePool: live count out of sync");
    return 0;  // unreachable
  }

  /// Tombstones `slot` and compacts once at least half the slots are dead.
  /// Invalidates previously obtained slots when compaction runs.
  void remove(std::size_t slot) {
    GF_CHECK(dead_[slot] == 0, "CandidatePool: double remove of slot ", slot);
    dead_[slot] = 1;
    --live_;
    if (live_ * 2 < items_.size()) compact();
  }

 private:
  void compact() {
    std::size_t w = 0;
    for (std::size_t s = 0; s < items_.size(); ++s)
      if (dead_[s] == 0) items_[w++] = items_[s];
    items_.resize(w);
    dead_.assign(w, 0);
  }

  std::vector<std::size_t> items_;
  std::vector<std::uint8_t> dead_;  ///< 1 = tombstoned
  std::size_t live_ = 0;
};

}  // namespace groupfel::grouping
