// Random grouping (RG): shuffle clients and cut into consecutive chunks of
// min_group_size. The last chunk absorbs the remainder so every group still
// satisfies the anonymity constraint (Eq. 31).
#include <numeric>

#include "grouping/grouping.hpp"

namespace groupfel::grouping {

Grouping random_grouping(const data::LabelMatrix& matrix,
                         const GroupingParams& params, runtime::Rng& rng,
                         runtime::ThreadPool* /*pool*/) {
  // The shuffle-and-cut is one O(n) serial pass; there is nothing to shard.
  const std::size_t n = matrix.num_clients();
  const std::size_t gs = std::max<std::size_t>(1, params.min_group_size);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  Grouping groups;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t remaining = n - i;
    // If the tail would be smaller than gs, merge it into this final group.
    const std::size_t take = (remaining < 2 * gs) ? remaining : gs;
    groups.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(i),
                        order.begin() + static_cast<std::ptrdiff_t>(i + take));
    i += take;
  }
  return groups;
}

}  // namespace groupfel::grouping
