// CoV-Grouping — the paper's Algorithm 2.
//
// Greedy: open a group with a random client, then repeatedly add the client
// that minimizes the group's CoV, while the group is under MinGS or above
// MaxCoV. The group is finalized when no candidate improves the CoV and the
// size constraint is met (MaxCoV is soft — see the paper's footnote 4).
//
// With params.greedy_window > 0 the greedy runs inside windows of a
// once-shuffled pool (streaming/partitioned mode for fleet-scale edges);
// window 0 is the classic whole-pool greedy, byte-identical to the original
// implementation. params.parallel_windows runs the windows concurrently,
// each on its own counter-based RNG stream, with groups emitted in
// deterministic window order — bit-identical for any ThreadPool size.
#include <limits>
#include <numeric>

#include "grouping/candidate_pool.hpp"
#include "grouping/grouping.hpp"

namespace groupfel::grouping {

namespace {

/// Algorithm 2 over one candidate pool; consumes `pool_items`, appends to
/// `groups`. RNG draws: one next_below per opened group (line 3). The
/// tombstone pool keeps candidate visit order identical to the historical
/// erase-based pool, so the output is byte-identical to it.
void greedy_over_pool(const data::LabelMatrix& matrix,
                      const GroupingParams& params, runtime::Rng& rng,
                      std::vector<std::size_t> pool_items, Grouping& groups) {
  CandidatePool pool(std::move(pool_items));
  while (!pool.empty()) {
    // Line 3: random first client — the paper notes this randomization is
    // what makes periodic regrouping produce fresh groups.
    const std::size_t first_slot = pool.nth_live_slot(rng.next_below(pool.size()));
    std::vector<std::size_t> group{pool.client(first_slot)};
    pool.remove(first_slot);

    IncrementalCov inc(matrix.num_labels());
    inc.add(matrix.row(group[0]));

    // Line 4: loop while the group does not yet meet its requirement.
    while ((inc.value() > params.max_cov ||
            group.size() < params.min_group_size) &&
           !pool.empty()) {
      // Line 5: the candidate that minimizes CoV(g ∪ c). Keeping the FIRST
      // minimum matches the erase-based argmin's tie-breaking.
      double best_cov = std::numeric_limits<double>::infinity();
      std::size_t best_slot = 0;
      pool.for_each([&](std::size_t slot, std::size_t client) {
        const double c = inc.value_with(matrix.row(client));
        if (c < best_cov) {
          best_cov = c;
          best_slot = slot;
        }
      });
      // Line 6: add if it improves CoV, or the group is still too small.
      if (best_cov < inc.value() || group.size() < params.min_group_size) {
        const std::size_t chosen = pool.client(best_slot);
        inc.add(matrix.row(chosen));
        group.push_back(chosen);
        pool.remove(best_slot);
      } else {
        break;  // Line 9: finalize (MaxCoV is a soft constraint).
      }
    }
    groups.push_back(std::move(group));
  }
}

}  // namespace

Grouping cov_grouping(const data::LabelMatrix& matrix,
                      const GroupingParams& params, runtime::Rng& rng,
                      runtime::ThreadPool* pool) {
  const std::size_t n = matrix.num_clients();
  Grouping groups;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  const std::size_t window = params.greedy_window;
  if (window == 0 || n <= window) {
    greedy_over_pool(matrix, params, rng, std::move(order), groups);
    return groups;
  }

  // Streaming mode: one shuffle gives every window an unbiased slice of the
  // population.
  rng.shuffle(order);
  const std::size_t num_windows = (n + window - 1) / window;
  const auto window_items = [&](std::size_t w) {
    const std::size_t start = w * window;
    const std::size_t end = std::min(n, start + window);
    return std::vector<std::size_t>(
        order.begin() + static_cast<std::ptrdiff_t>(start),
        order.begin() + static_cast<std::ptrdiff_t>(end));
  };

  if (!params.parallel_windows) {
    // Serial windows thread ONE stream through all windows in order —
    // byte-identical to previous releases.
    for (std::size_t w = 0; w < num_windows; ++w)
      greedy_over_pool(matrix, params, rng, window_items(w), groups);
    return groups;
  }

  // Parallel windows: one counter-based stream per window (fork is const,
  // so the streams do not depend on execution order), per-window output
  // slots, deterministic window-order concatenation.
  std::vector<Grouping> per_window(num_windows);
  const auto run_window = [&](std::size_t w) {
    runtime::Rng wrng = rng.fork(w);
    greedy_over_pool(matrix, params, wrng, window_items(w), per_window[w]);
  };
  if (pool != nullptr && pool->size() > 1 && num_windows > 1) {
    pool->parallel_for(num_windows, run_window);
  } else {
    for (std::size_t w = 0; w < num_windows; ++w) run_window(w);
  }
  for (auto& wg : per_window)
    for (auto& g : wg) groups.push_back(std::move(g));
  return groups;
}

}  // namespace groupfel::grouping
