// CoV-Grouping — the paper's Algorithm 2.
//
// Greedy: open a group with a random client, then repeatedly add the client
// that minimizes the group's CoV, while the group is under MinGS or above
// MaxCoV. The group is finalized when no candidate improves the CoV and the
// size constraint is met (MaxCoV is soft — see the paper's footnote 4).
//
// With params.greedy_window > 0 the greedy runs inside consecutive windows
// of a once-shuffled pool (streaming/partitioned mode for fleet-scale
// edges); window 0 is the classic whole-pool greedy, byte-identical to the
// original implementation.
#include <limits>
#include <numeric>

#include "grouping/grouping.hpp"

namespace groupfel::grouping {

namespace {

/// Algorithm 2 over one candidate pool; consumes `pool`, appends to
/// `groups`. RNG draws: one next_below per opened group (line 3).
void greedy_over_pool(const data::LabelMatrix& matrix,
                      const GroupingParams& params, runtime::Rng& rng,
                      std::vector<std::size_t>& pool, Grouping& groups) {
  while (!pool.empty()) {
    // Line 3: random first client — the paper notes this randomization is
    // what makes periodic regrouping produce fresh groups.
    const std::size_t first_pos = rng.next_below(pool.size());
    std::vector<std::size_t> group{pool[first_pos]};
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(first_pos));

    IncrementalCov inc(matrix.num_labels());
    inc.add(matrix.row(group[0]));

    // Line 4: loop while the group does not yet meet its requirement.
    while ((inc.value() > params.max_cov ||
            group.size() < params.min_group_size) &&
           !pool.empty()) {
      // Line 5: the candidate that minimizes CoV(g ∪ c).
      double best_cov = std::numeric_limits<double>::infinity();
      std::size_t best_pos = 0;
      for (std::size_t pos = 0; pos < pool.size(); ++pos) {
        const double c = inc.value_with(matrix.row(pool[pos]));
        if (c < best_cov) {
          best_cov = c;
          best_pos = pos;
        }
      }
      // Line 6: add if it improves CoV, or the group is still too small.
      if (best_cov < inc.value() || group.size() < params.min_group_size) {
        inc.add(matrix.row(pool[best_pos]));
        group.push_back(pool[best_pos]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best_pos));
      } else {
        break;  // Line 9: finalize (MaxCoV is a soft constraint).
      }
    }
    groups.push_back(std::move(group));
  }
}

}  // namespace

Grouping cov_grouping(const data::LabelMatrix& matrix,
                      const GroupingParams& params, runtime::Rng& rng) {
  const std::size_t n = matrix.num_clients();
  Grouping groups;
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});

  const std::size_t window = params.greedy_window;
  if (window == 0 || n <= window) {
    greedy_over_pool(matrix, params, rng, pool, groups);
    return groups;
  }

  // Streaming mode: one shuffle gives every window an unbiased slice of the
  // population, then each window runs the classic greedy independently.
  rng.shuffle(pool);
  std::vector<std::size_t> window_pool;
  window_pool.reserve(window);
  for (std::size_t start = 0; start < n; start += window) {
    const std::size_t end = std::min(n, start + window);
    window_pool.assign(pool.begin() + static_cast<std::ptrdiff_t>(start),
                       pool.begin() + static_cast<std::ptrdiff_t>(end));
    greedy_over_pool(matrix, params, rng, window_pool, groups);
  }
  return groups;
}

}  // namespace groupfel::grouping
